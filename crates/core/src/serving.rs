//! The concurrent serving layer: one [`Hub`] per bound state, many
//! [`WriteHandle`]s and [`ReadView`]s over it.
//!
//! Theorem 4.2 is a concurrency structure in disguise: on an
//! independence-reducible scheme the blocks of the IR partition chase
//! *independently*, so per-block consistency is global consistency — and
//! therefore ops on different blocks commute. The hub turns that into a
//! serving discipline:
//!
//! * **writes** go through [`WriteHandle`]: each block has its own write
//!   lock, a writer holds it across *log → chase → apply*, so the WAL
//!   order of any one block equals its apply order while writers on
//!   different blocks proceed in parallel;
//! * **reads** go through [`ReadView`]: an epoch-stamped immutable
//!   snapshot, published lazily from a consistent cut of every block.
//!   Readers never block writers and never see a half-applied op;
//! * **durability** is an owned, shared [`DurabilitySink`] — under
//!   concurrency the sink can coalesce the WAL appends of overlapping
//!   writers into one fsync (group commit, `idr_store::SharedStore`).
//!
//! Because per-block log order equals per-block apply order and
//! cross-block ops commute, **a serial replay of the log reproduces the
//! concurrent final state** — the invariant the concurrency stress suite
//! and the `idr fuzz --concurrent` oracle arm check end to end.
//!
//! The pre-0.7 [`Session`](crate::Session) facade survives as a thin
//! compatibility shim over this module (one hub, one mirror state, no
//! shared sink); see DESIGN.md §14 for the migration guide.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use idr_core::Engine;
//! use idr_relation::exec::Guard;
//! use idr_relation::{parse, DatabaseState, SymbolTable};
//!
//! let db = parse::parse_scheme(
//!     "universe: A B C D\n\
//!      scheme R1: A B keys A\n\
//!      scheme R2: C D keys C\n",
//! )
//! .unwrap();
//! let engine = Engine::new(db);
//! let guard = Guard::unlimited();
//! let symbols = Arc::new(std::sync::Mutex::new(SymbolTable::new()));
//!
//! let state = DatabaseState::empty(engine.scheme());
//! let hub = engine.hub(&state, &guard).unwrap();
//! let writer = hub.write_handle();
//!
//! // Two writer threads, one per block — concurrent, serialized per block.
//! std::thread::scope(|s| {
//!     for rel in 0..2 {
//!         let w = writer.clone();
//!         let symbols = Arc::clone(&symbols);
//!         let engine = &engine;
//!         let guard = &guard;
//!         s.spawn(move || {
//!             let line = ["R1: A=a B=b", "R2: C=c D=d"][rel];
//!             let (i, t) = {
//!                 let mut sym = symbols.lock().unwrap();
//!                 parse::parse_tuple_line(line, engine.scheme(), &mut sym).unwrap()
//!             };
//!             assert!(w.insert(i, t, guard).unwrap());
//!         });
//!     }
//! });
//!
//! // A read view is an immutable epoch: consistent, stamped, shareable.
//! let view = hub.read_view();
//! assert!(view.is_consistent());
//! assert_eq!(view.state().total_tuples(), 2);
//! let x = engine.scheme().universe().set_of("AB");
//! assert_eq!(view.total_projection(x, &guard).unwrap().unwrap().len(), 1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use idr_chase::{IncrementalChase, RejectionExplanation, TupleExplanation};
use idr_obs::timeline::{self, OpTimeline, Phase};
use idr_obs::{Counter, Gauge, Histogram, MetricsRegistry, ShardedLog, TraceEvent, TraceHandle};
use idr_relation::exec::{ExecError, Guard};
use idr_relation::{AttrSet, DatabaseState, Tuple};

use crate::durability::{DurabilitySink, DurableOp};
use crate::engine::{evaluate_blocks, Engine, SHARD_CAPACITY};

/// An immutable, epoch-stamped cut of the hub's state. Cheap to share
/// (`Arc`ed by [`ReadView`]); queries over it are wait-free with respect
/// to writers.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    state: DatabaseState,
    consistent: bool,
}

/// One block's serialized write lane: the chased tableau plus the slice
/// of the base state the block owns (full-width [`DatabaseState`], only
/// this block's relations populated — blocks partition the relations, so
/// the union over slots is the whole state).
#[derive(Debug)]
struct Slot {
    chase: IncrementalChase,
    state: DatabaseState,
}

/// How phase 3 of [`Hub::batch_op`] commits one slot's share of a
/// batch, decided per slot by [`Hub::batch_slot_verdicts`].
#[derive(Debug)]
enum SlotPlan {
    /// The pure-insert fast path already chased the slot's live tableau
    /// in place; only the substate still has to catch up.
    InPlace,
    /// The group was speculated on clones; swap them in wholesale.
    /// Boxed: the pair is two orders of magnitude larger than the
    /// `InPlace` tag, and phase 3 moves it exactly once.
    Swap(Box<(IncrementalChase, DatabaseState)>),
}

/// State shared by every handle of one hub.
#[derive(Debug)]
struct HubShared {
    slots: Vec<Mutex<Slot>>,
    /// `true` when the scheme is not IR (single whole-state slot).
    whole: bool,
    /// The most recently published snapshot. Lock order: `publish`
    /// before any slot; writers take a single slot and never `publish`.
    publish: Mutex<Arc<Snapshot>>,
    epoch: AtomicU64,
    /// Set by writers after mutating a slot; cleared (before the slot
    /// scan) by the publisher. A spurious republish is harmless, a lost
    /// update is not — see [`HubShared::publish_snapshot`].
    stale: AtomicBool,
    /// Owned durability sink for the concurrent write pipeline.
    sink: Option<Arc<dyn DurabilitySink>>,
    /// Provenance of the most recent rejected insert across all writers.
    last_rejection: Mutex<Option<RejectionExplanation>>,
    /// Pre-resolved metric handles (None when metrics are off). The
    /// write pipeline must never pay a registry name lookup — the
    /// registry's maps are the locks a periodic snapshot takes.
    metrics: Option<HubMetrics>,
}

/// Every metric the per-op serving path touches, resolved once at hub
/// build. Incrementing is then pure relaxed atomics, so writer lanes
/// never contend with `MetricsRegistry::snapshot` (the `--stats-every`
/// path) on the registry's map locks.
#[derive(Debug)]
struct HubMetrics {
    inserts_accepted: Arc<Counter>,
    inserts_rejected: Arc<Counter>,
    deletes: Arc<Counter>,
    insert_us: Arc<Histogram>,
    epochs_published: Arc<Counter>,
    epoch: Arc<Gauge>,
    publish_us: Arc<Histogram>,
    /// Ops applied since the last published epoch — how far readers of
    /// the current snapshot trail the write frontier.
    epoch_lag: Arc<Gauge>,
    /// Per-block op counts: `hub.lane_ops{block=B}`. Thm 4.2 read
    /// operationally — independent blocks predict near-uniform lanes.
    lane_ops: Vec<Arc<Counter>>,
    /// Per-block microseconds spent holding the block lock:
    /// `hub.lane_busy_us{block=B}` — the utilization numerator.
    lane_busy_us: Vec<Arc<Counter>>,
    /// Per-phase pipeline latency: `pipeline.us{phase=P}`.
    phase_us: [Arc<Histogram>; 7],
    guard_chase_steps: Arc<Gauge>,
    guard_lookups: Arc<Gauge>,
    guard_enumeration: Arc<Gauge>,
}

impl HubMetrics {
    fn new(m: &MetricsRegistry, blocks: usize) -> HubMetrics {
        HubMetrics {
            inserts_accepted: m.counter("session.inserts_accepted"),
            inserts_rejected: m.counter("session.inserts_rejected"),
            deletes: m.counter("session.deletes"),
            insert_us: m.latency_histogram("session.insert_us"),
            epochs_published: m.counter("hub.epochs_published"),
            epoch: m.gauge("hub.epoch"),
            publish_us: m.latency_histogram("hub.publish_us"),
            epoch_lag: m.gauge("hub.epoch_lag"),
            lane_ops: (0..blocks)
                .map(|b| m.counter(&format!("hub.lane_ops{{block={b}}}")))
                .collect(),
            lane_busy_us: (0..blocks)
                .map(|b| m.counter(&format!("hub.lane_busy_us{{block={b}}}")))
                .collect(),
            phase_us: Phase::ALL
                .map(|p| m.latency_histogram(&format!("pipeline.us{{phase={}}}", p.as_str()))),
            guard_chase_steps: m.gauge("guard.chase_steps"),
            guard_lookups: m.gauge("guard.lookups"),
            guard_enumeration: m.gauge("guard.enumeration"),
        }
    }

    /// The pre-resolved equivalent of [`Engine::record_guard_metrics`].
    fn record_guard(&self, guard: &Guard) {
        let s = guard.snapshot();
        self.guard_chase_steps.set(s.chase_steps);
        self.guard_lookups.set(s.lookups);
        self.guard_enumeration.set(s.enumeration);
    }

    /// Folds a completed op's timeline into the per-phase histograms.
    fn record_timeline(&self, tl: &OpTimeline) {
        for (p, d) in tl.phase_durations() {
            self.phase_us[p as usize].observe(d);
        }
    }
}

/// Recovers a slot lock from poison: a writer panicking mid-op is
/// rebuilt away by the rollback paths, and the chase engines themselves
/// never leave a slot half-mutated across an unwind point we own.
fn lock_slot(slot: &Mutex<Slot>) -> MutexGuard<'_, Slot> {
    slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An [`Engine`] bound to one evolving state for concurrent service.
///
/// The hub owns the per-block tableaux and the published snapshot; it
/// hands out cloneable [`WriteHandle`]s (serialized per block, parallel
/// across blocks) and epoch-stamped [`ReadView`]s. Built by
/// [`Engine::hub`] / [`Engine::hub_with`].
#[derive(Debug)]
pub struct Hub<'e> {
    engine: &'e Engine,
    shared: Arc<HubShared>,
}

/// A cloneable writer over a [`Hub`]: routes each insert/delete to its
/// block's serialized write lane. Many handles (threads) may write
/// concurrently; ops on the same block serialize, ops on different
/// blocks run in parallel (Theorem 4.2).
#[derive(Debug)]
pub struct WriteHandle<'e> {
    engine: &'e Engine,
    shared: Arc<HubShared>,
}

impl Clone for WriteHandle<'_> {
    fn clone(&self) -> Self {
        WriteHandle {
            engine: self.engine,
            shared: Arc::clone(&self.shared),
        }
    }
}

/// An immutable reader over one published epoch. Opening a view
/// publishes the latest consistent cut if writers dirtied the state
/// since the last publication; the view itself then never changes —
/// snapshot isolation, not read-your-latest.
#[derive(Debug)]
pub struct ReadView<'e> {
    engine: &'e Engine,
    snap: Arc<Snapshot>,
}

impl Clone for ReadView<'_> {
    fn clone(&self) -> Self {
        ReadView {
            engine: self.engine,
            snap: Arc::clone(&self.snap),
        }
    }
}

/// One op of a framed batch group, applied through
/// [`WriteHandle::apply_batch`]. The verdict contract per op matches the
/// single-op paths: an insert's verdict is *accepted*, a delete's is
/// *removed*.
#[derive(Clone, Debug)]
pub enum BatchOp {
    /// Insert `t` into relation `rel`.
    Insert {
        /// Target relation index.
        rel: usize,
        /// The tuple being inserted.
        t: Tuple,
    },
    /// Delete `t` from relation `rel`.
    Delete {
        /// Target relation index.
        rel: usize,
        /// The tuple being deleted.
        t: Tuple,
    },
}

impl BatchOp {
    /// The op's target relation.
    pub fn rel(&self) -> usize {
        match self {
            BatchOp::Insert { rel, .. } | BatchOp::Delete { rel, .. } => *rel,
        }
    }

    fn as_durable(&self) -> DurableOp<'_> {
        match self {
            BatchOp::Insert { rel, t } => DurableOp::Insert { rel: *rel, t },
            BatchOp::Delete { rel, t } => DurableOp::Delete { rel: *rel, t },
        }
    }
}

impl<'e> Hub<'e> {
    /// Builds the hub: chases every block (in parallel when the engine
    /// enables it), carves the state into per-block slots, and publishes
    /// epoch 0. Emits the same `session_built` event and metrics as the
    /// legacy session build — the shim delegates here.
    pub(crate) fn build(
        engine: &'e Engine,
        state: &DatabaseState,
        guard: &Guard,
        sink: Option<Arc<dyn DurabilitySink>>,
    ) -> Result<Hub<'e>, ExecError> {
        let t0 = Instant::now();
        let obs = engine.observability();
        let (slots, whole) = match engine.ir() {
            Some(ir) if !ir.is_empty() => {
                // One private shard per block: workers never contend on
                // the sink, and draining the shards in block order at
                // the barrier makes the merged stream identical whether
                // the blocks ran serially or in parallel.
                let shards = obs
                    .tracer
                    .enabled()
                    .then(|| ShardedLog::new(ir.len(), SHARD_CAPACITY));
                let built = evaluate_blocks(ir.len(), engine.parallel_enabled(), |b| {
                    let trace = match &shards {
                        Some(sh) => TraceHandle::to_log(Arc::clone(sh.shard(b))),
                        None => TraceHandle::none(),
                    };
                    engine.chase_block(ir, b, state, guard, trace)
                });
                if let Some(sh) = &shards {
                    sh.merge_into_handle(&obs.tracer);
                }
                let mut slots = Vec::with_capacity(built.len());
                for (b, r) in built.into_iter().enumerate() {
                    let mut chase = r?;
                    // The shards are drained; point incremental work
                    // straight at the hub's sink.
                    chase.retarget_trace(obs.tracer.clone());
                    let mut sub = DatabaseState::empty(engine.scheme());
                    for &i in &ir.partition[b] {
                        for t in state.relation(i).iter() {
                            sub.insert(i, t.clone())
                                .expect("tuple comes from relation i of a matching state");
                        }
                    }
                    slots.push(Mutex::new(Slot { chase, state: sub }));
                }
                (slots, false)
            }
            _ => (
                vec![Mutex::new(Slot {
                    chase: engine.chase_whole(state, guard)?,
                    state: state.clone(),
                })],
                true,
            ),
        };
        let consistent = slots
            .iter()
            .all(|s| lock_slot(s).chase.failure().is_none());
        let metrics = obs
            .metrics
            .as_ref()
            .map(|m| HubMetrics::new(m, slots.len()));
        let hub = Hub {
            engine,
            shared: Arc::new(HubShared {
                whole,
                publish: Mutex::new(Arc::new(Snapshot {
                    epoch: 0,
                    state: state.clone(),
                    consistent,
                })),
                epoch: AtomicU64::new(0),
                stale: AtomicBool::new(false),
                sink,
                last_rejection: Mutex::new(None),
                metrics,
                slots,
            }),
        };
        obs.tracer.emit_with(|| TraceEvent::SessionBuilt {
            blocks: hub.shared.slots.len(),
            consistent,
        });
        if let Some(m) = &obs.metrics {
            m.counter("session.builds").inc();
            m.latency_histogram("session.build_us")
                .observe_duration(t0.elapsed());
            let stats = hub.chase_stats();
            m.counter("chase.rule_applications")
                .add(stats.rule_applications as u64);
            m.counter("chase.passes").add(stats.passes as u64);
            engine.record_guard_metrics(guard);
        }
        Ok(hub)
    }

    /// The engine this hub serves.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// A new writer over this hub. Cloneable and `Send` — hand one to
    /// each client thread.
    pub fn write_handle(&self) -> WriteHandle<'e> {
        WriteHandle {
            engine: self.engine,
            shared: Arc::clone(&self.shared),
        }
    }

    /// An epoch-stamped read view. If writers dirtied the state since
    /// the last publication this first publishes a fresh consistent cut
    /// (briefly locking each block in turn); the returned view is then
    /// immutable.
    pub fn read_view(&self) -> ReadView<'e> {
        ReadView {
            engine: self.engine,
            snap: publish_snapshot(self.engine, &self.shared),
        }
    }

    /// Whether every block's current substate is consistent.
    pub fn is_consistent(&self) -> bool {
        self.shared
            .slots
            .iter()
            .all(|s| lock_slot(s).chase.failure().is_none())
    }

    /// Block indexes whose substate is inconsistent (always `[0]` or
    /// `[]` for the whole-state backend).
    pub fn inconsistent_blocks(&self) -> Vec<usize> {
        self.shared
            .slots
            .iter()
            .enumerate()
            .filter_map(|(b, s)| lock_slot(s).chase.failure().map(|_| b))
            .collect()
    }

    /// Provenance for a derived tuple: searches the live block tableaux
    /// in block order. See `Session::explain` for the contract.
    pub fn explain(&self, x: AttrSet, t: &Tuple) -> Option<TupleExplanation> {
        self.shared
            .slots
            .iter()
            .find_map(|s| lock_slot(s).chase.explain_tuple(x, t))
    }

    /// Provenance of the most recent rejected insert across all writers
    /// (cloned out of the hub — under concurrency a borrow would race).
    pub fn explain_rejection(&self) -> Option<RejectionExplanation> {
        self.shared
            .last_rejection
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Aggregated chase work across every block tableau.
    pub fn chase_stats(&self) -> idr_chase::ChaseStats {
        let mut total = idr_chase::ChaseStats::default();
        for s in &self.shared.slots {
            let stats = lock_slot(s).chase.stats();
            total.passes += stats.passes;
            total.rule_applications += stats.rule_applications;
        }
        total
    }

    /// The shim's live query path: the legacy `Session::total_projection`
    /// semantics over a caller-supplied base state (the shim's mirror).
    pub(crate) fn query_live(
        &self,
        state: &DatabaseState,
        x: AttrSet,
        guard: &Guard,
    ) -> Result<Option<Vec<Tuple>>, ExecError> {
        let t0 = Instant::now();
        if !self.is_consistent() {
            return Ok(None);
        }
        let (result, method) = if self.shared.whole {
            // The live whole-state tableau answers directly.
            (
                Ok(Some(lock_slot(&self.shared.slots[0]).chase.total_projection(x))),
                "chase",
            )
        } else {
            project_ir(self.engine, state, x, guard)?
        };
        emit_query(self.engine, x, method, &result, t0, guard);
        result
    }

    /// Routes relation `i` to its slot index.
    fn slot_of(&self, i: usize) -> usize {
        assert!(i < self.engine.scheme().len(), "relation index out of range");
        if self.shared.whole {
            0
        } else {
            let ir = self.engine.ir().expect("block slots imply an IR partition");
            ir.block_of[i]
        }
    }

    /// `Some(err)` when relation `i`'s block is currently poisoned — the
    /// legacy shim checks this *before* logging the intent record.
    pub(crate) fn block_failure(&self, i: usize) -> Option<ExecError> {
        lock_slot(&self.shared.slots[self.slot_of(i)])
            .chase
            .failure()
            .map(|f| f.clone().into())
    }

    /// The slot half of the insert pipeline. Holds the target block's
    /// lock across *log → chase → apply*, so per-block WAL order equals
    /// apply order. Returns the verdict plus (on rejection) its
    /// provenance; emits no events — callers ([`WriteHandle::insert`],
    /// the `Session` shim) finish the op in their own order.
    pub(crate) fn insert_op(
        &self,
        i: usize,
        t: Tuple,
        guard: &Guard,
    ) -> Result<(bool, Option<RejectionExplanation>), ExecError> {
        let si = self.slot_of(i);
        let mut slot = lock_slot(&self.shared.slots[si]);
        timeline::stamp_current(Phase::LaneAcquire);
        let lane_t0 = Instant::now();
        if let Some(f) = slot.chase.failure() {
            return Err(f.clone().into());
        }
        // Write-ahead: commit the intent record before memory changes,
        // still under the block lock.
        if let Some(d) = &self.shared.sink {
            d.log_op(DurableOp::Insert { rel: i, t: &t })?;
        }
        // Durable sinks stamp wal-append where the record is queued;
        // this fallback covers in-memory sinks (first write wins).
        timeline::stamp_current(Phase::WalAppend);
        // A capacity trip from the push takes the same rollback branch
        // as a guard trip mid-chase: rebuild + abort marker.
        let pushed = slot.chase.push_tuple(&t, Some(i)).map(|_| ());
        let outcome = match pushed.and_then(|()| slot.chase.run(guard).map(|_| ())) {
            Ok(_) => {
                slot.state
                    .insert(i, t)
                    .expect("tuple was chased against scheme i, so it matches scheme i");
                timeline::stamp_current(Phase::Apply);
                self.shared.stale.store(true, Ordering::Release);
                Ok((true, None))
            }
            Err(ExecError::Inconsistent { .. }) => {
                // Capture provenance before the rebuild wipes the chase
                // that found the violation.
                let why = slot.chase.explain_rejection();
                slot.chase = self
                    .rebuilt_chase(si, &slot.state, &Guard::unlimited())
                    .expect("rebuilding a previously consistent block cannot fail");
                // A rejection still did its apply work: the chase ran
                // and the block's tableau was restored.
                timeline::stamp_current(Phase::Apply);
                Ok((false, why))
            }
            Err(e) => {
                // Guard trip mid-chase: roll the speculative row back by
                // rebuilding from the unchanged base substate (a chase
                // already known to succeed — not charged).
                slot.chase = self
                    .rebuilt_chase(si, &slot.state, &Guard::unlimited())
                    .expect("rebuilding a previously consistent block cannot fail");
                // Memory is rolled back; mark the logged record aborted
                // so the log agrees with memory again.
                if let Some(d) = &self.shared.sink {
                    d.log_abort()?;
                }
                Err(e)
            }
        };
        if let Some(hm) = &self.shared.metrics {
            hm.lane_ops[si].inc();
            hm.lane_busy_us[si].add(lane_t0.elapsed().as_micros() as u64);
            if matches!(outcome, Ok((true, _))) {
                hm.epoch_lag.add(1);
            }
        }
        drop(slot);
        if let Ok((_, Some(why))) = &outcome {
            *self
                .shared
                .last_rejection
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(why.clone());
        }
        outcome
    }

    /// The `insert_applied` event + metrics an insert ends with,
    /// identical for the concurrent pipeline and the `Session` shim.
    pub(crate) fn emit_insert_event(&self, i: usize, accepted: bool, t0: Instant, guard: &Guard) {
        let obs = self.engine.observability();
        obs.tracer.emit_with(|| TraceEvent::InsertApplied {
            relation: Arc::from(self.engine.scheme().scheme(i).name()),
            accepted,
        });
        if let Some(hm) = &self.shared.metrics {
            if accepted {
                hm.inserts_accepted.inc();
            } else {
                hm.inserts_rejected.inc();
            }
            hm.insert_us.observe_duration(t0.elapsed());
            hm.record_guard(guard);
        }
    }

    /// The `delete_applied` event + metrics a delete ends with.
    pub(crate) fn emit_delete_event(&self, i: usize, removed: bool, guard: &Guard) {
        let obs = self.engine.observability();
        obs.tracer.emit_with(|| TraceEvent::DeleteApplied {
            relation: Arc::from(self.engine.scheme().scheme(i).name()),
            removed,
        });
        if let Some(hm) = &self.shared.metrics {
            hm.deletes.inc();
            hm.record_guard(guard);
        }
    }

    /// The slot half of the delete pipeline: log, remove, rebuild the
    /// block's tableau from its substate (charged against `guard`); on a
    /// guard trip the tuple is restored and the logged record aborted.
    /// Emits no events — see [`Hub::insert_op`].
    pub(crate) fn delete_op(&self, i: usize, t: &Tuple, guard: &Guard) -> Result<bool, ExecError> {
        let si = self.slot_of(i);
        let mut slot = lock_slot(&self.shared.slots[si]);
        timeline::stamp_current(Phase::LaneAcquire);
        let lane_t0 = Instant::now();
        // Write-ahead: commit the intent record before memory changes.
        if let Some(d) = &self.shared.sink {
            d.log_op(DurableOp::Delete { rel: i, t })?;
        }
        timeline::stamp_current(Phase::WalAppend);
        let removed = slot
            .state
            .remove(i, t)
            .expect("relation index was validated by slot_of");
        if removed {
            match self.rebuilt_chase(si, &slot.state, guard) {
                Ok(chase) => slot.chase = chase,
                Err(e) => {
                    // The rebuild never replaced the tableau, so the old
                    // chase is still answering; put the tuple back so the
                    // base substate agrees with it — delete is
                    // all-or-nothing.
                    slot.state
                        .insert(i, t.clone())
                        .expect("tuple was just removed from relation i");
                    if let Some(d) = &self.shared.sink {
                        d.log_abort()?;
                    }
                    return Err(e);
                }
            }
            self.shared.stale.store(true, Ordering::Release);
        }
        timeline::stamp_current(Phase::Apply);
        if let Some(hm) = &self.shared.metrics {
            hm.lane_ops[si].inc();
            hm.lane_busy_us[si].add(lane_t0.elapsed().as_micros() as u64);
            if removed {
                hm.epoch_lag.add(1);
            }
        }
        drop(slot);
        Ok(removed)
    }

    /// The slot half of the batch pipeline: applies a framed op group as
    /// one unit across every block it touches. See
    /// [`WriteHandle::apply_batch`] for the contract; returns the per-op
    /// verdicts (in op order) and the number of blocks touched.
    ///
    /// Unlike the single-op paths, the batch logs **after** chase
    /// verdicts are known and **before** any substate mutation. A
    /// pure-insert group earns its verdicts by chasing the slot's live
    /// tableau in place — the tableau is *derived* state, so mutating it
    /// before the log call is safe as long as a failure rebuilds it from
    /// the (untouched) substate, which is exactly the batch's **single
    /// rollback point**. Groups containing deletes, and pure-insert
    /// groups whose combined run turns inconsistent, instead speculate
    /// on clones of the slot's tableau and substate and swap them in
    /// after the log call. Either way a typed error before the log call
    /// leaves both the log and every substate untouched, so log ==
    /// memory holds without any abort markers (DESIGN.md §16).
    pub(crate) fn batch_op(
        &self,
        ops: &[BatchOp],
        guard: &Guard,
    ) -> Result<(Vec<bool>, usize), ExecError> {
        if ops.is_empty() {
            return Ok((Vec::new(), 0));
        }
        let mut by_slot: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (k, op) in ops.iter().enumerate() {
            by_slot.entry(self.slot_of(op.rel())).or_default().push(k);
        }
        // Every involved block lock, acquired in index order — per-op
        // writers hold at most one slot at a time, so ordered
        // acquisition cannot deadlock against them, and holding all of
        // them across log → apply keeps per-block WAL order equal to
        // apply order exactly as in the single-op paths.
        let mut guards: Vec<MutexGuard<'_, Slot>> = by_slot
            .keys()
            .map(|&si| lock_slot(&self.shared.slots[si]))
            .collect();
        timeline::stamp_current(Phase::LaneAcquire);
        let lane_t0 = Instant::now();
        for slot in &guards {
            if let Some(f) = slot.chase.failure() {
                return Err(f.clone().into());
            }
        }
        // Phase 1 — earn every verdict. No substate is mutated; in-place
        // slots mutate their (derived) tableau and are rebuilt below if
        // any later slot or the log call fails.
        let mut verdicts = vec![false; ops.len()];
        let mut plans: Vec<SlotPlan> = Vec::with_capacity(guards.len());
        let mut last_why: Option<RejectionExplanation> = None;
        let mut failure: Option<ExecError> = None;
        for (slot, (&si, idxs)) in guards.iter_mut().zip(&by_slot) {
            match self.batch_slot_verdicts(si, slot, ops, idxs, &mut verdicts, guard) {
                Ok((plan, why)) => {
                    if why.is_some() {
                        last_why = why;
                    }
                    plans.push(plan);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // Phase 2 — write-ahead for the whole group: one sink batch, one
        // group-commit barrier, one fsync.
        if failure.is_none() {
            if let Some(d) = &self.shared.sink {
                let records: Vec<DurableOp<'_>> = ops.iter().map(BatchOp::as_durable).collect();
                if let Err(e) = d.log_ops(&records) {
                    failure = Some(e);
                }
            }
        }
        if let Some(e) = failure {
            // Single rollback point: clone-based plans just drop;
            // in-place slots rebuild their tableau from the untouched
            // substate. Nothing was logged, so log == memory holds.
            for (slot, (plan, (&si, _))) in guards.iter_mut().zip(plans.iter().zip(&by_slot)) {
                if matches!(plan, SlotPlan::InPlace) {
                    slot.chase = self
                        .rebuilt_chase(si, &slot.state, &Guard::unlimited())
                        .expect("rebuilding the consistent pre-batch substate cannot fail");
                }
            }
            return Err(e);
        }
        // Phase 3 — apply: in-place slots catch their substate up to the
        // already-chased tableau; clone-based slots swap the speculated
        // tableau and substate in.
        let applied = verdicts.iter().filter(|&&v| v).count() as u64;
        for (slot, (plan, (_, idxs))) in guards.iter_mut().zip(plans.into_iter().zip(&by_slot)) {
            match plan {
                SlotPlan::InPlace => {
                    for &k in idxs {
                        let BatchOp::Insert { rel, t } = &ops[k] else {
                            unreachable!("in-place plans are pure-insert")
                        };
                        slot.state
                            .insert(*rel, t.clone())
                            .expect("tuple was chased against scheme rel, so it matches");
                    }
                }
                SlotPlan::Swap(pair) => {
                    let (chase, state) = *pair;
                    slot.chase = chase;
                    slot.state = state;
                }
            }
        }
        timeline::stamp_current(Phase::Apply);
        if applied > 0 {
            self.shared.stale.store(true, Ordering::Release);
        }
        if let Some(hm) = &self.shared.metrics {
            let lane_us = lane_t0.elapsed().as_micros() as u64;
            for (&si, idxs) in &by_slot {
                hm.lane_ops[si].add(idxs.len() as u64);
                hm.lane_busy_us[si].add(lane_us);
            }
            hm.epoch_lag.add(applied);
        }
        drop(guards);
        if last_why.is_some() {
            *self
                .shared
                .last_rejection
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = last_why;
        }
        Ok((verdicts, by_slot.len()))
    }

    /// Earns one slot's share of a batch's verdicts, filling `verdicts`
    /// at the ops' original batch positions, and returns how phase 3
    /// should commit the slot plus the provenance of the last rejected
    /// insert (if any).
    ///
    /// Pure-insert groups take the fast path — the rows seed and sweep
    /// the slot's live tableau **in place** (no million-row tableau or
    /// substate clone per group; Church–Rosser makes the combined
    /// tableau identical to serial application, and on a consistent
    /// outcome monotonicity makes every serial prefix verdict
    /// *accepted*), leaving the substate to catch up after the log
    /// call. A combined-run inconsistency (which cannot attribute a
    /// culprit op) rolls the tableau back — one rebuild from the
    /// untouched substate — and falls back to clone-based per-op replay
    /// so each op re-earns exactly its serial verdict; any other error
    /// rolls back the same way and aborts the group. Groups containing
    /// deletes replay serially on clones too, deferring the
    /// delete-triggered rebuild until the next insert (or the end), so
    /// a run of deletes costs one rebuild instead of one per op.
    fn batch_slot_verdicts(
        &self,
        si: usize,
        slot: &mut Slot,
        ops: &[BatchOp],
        idxs: &[usize],
        verdicts: &mut [bool],
        guard: &Guard,
    ) -> Result<(SlotPlan, Option<RejectionExplanation>), ExecError> {
        let all_inserts = idxs
            .iter()
            .all(|&k| matches!(ops[k], BatchOp::Insert { .. }));
        if all_inserts {
            let group = idxs.iter().map(|&k| match &ops[k] {
                BatchOp::Insert { rel, t } => (t, Some(*rel)),
                BatchOp::Delete { .. } => unreachable!("all_inserts was checked"),
            });
            match slot.chase.insert_batch(group, guard) {
                Ok(_) => {
                    for &k in idxs {
                        verdicts[k] = true;
                    }
                    return Ok((SlotPlan::InPlace, None));
                }
                // The group is inconsistent *as a whole* (the tableau is
                // now poisoned): roll it back, then fall through to
                // per-op replay so every op re-earns its serial verdict.
                Err(ExecError::Inconsistent { .. }) => {
                    slot.chase = self
                        .rebuilt_chase(si, &slot.state, &Guard::unlimited())
                        .expect("rebuilding the consistent pre-batch substate cannot fail");
                }
                // Guard or capacity trip mid-sweep: the tableau holds
                // speculative rows, so restore it before aborting.
                Err(e) => {
                    slot.chase = self
                        .rebuilt_chase(si, &slot.state, &Guard::unlimited())
                        .expect("rebuilding the consistent pre-batch substate cannot fail");
                    return Err(e);
                }
            }
        }
        let mut state = slot.state.clone();
        let mut chase = slot.chase.clone();
        // `true` while `chase` trails `state` by one or more deletes.
        let mut stale = false;
        let mut why = None;
        for &k in idxs {
            match &ops[k] {
                BatchOp::Insert { rel, t } => {
                    if stale {
                        // The deferred delete rebuild — charged against
                        // the batch guard like the per-op delete path.
                        chase = self.rebuilt_chase(si, &state, guard)?;
                        stale = false;
                    }
                    let pushed = chase.push_tuple(t, Some(*rel)).map(|_| ());
                    match pushed.and_then(|()| chase.run(guard).map(|_| ())) {
                        Ok(()) => {
                            state
                                .insert(*rel, t.clone())
                                .expect("tuple was chased against scheme rel, so it matches");
                            verdicts[k] = true;
                        }
                        Err(ExecError::Inconsistent { .. }) => {
                            why = chase.explain_rejection().or(why);
                            chase = self
                                .rebuilt_chase(si, &state, &Guard::unlimited())
                                .expect("rebuilding a consistent prefix state cannot fail");
                        }
                        Err(e) => return Err(e),
                    }
                }
                BatchOp::Delete { rel, t } => {
                    let removed = state
                        .remove(*rel, t)
                        .expect("relation index was validated by slot_of");
                    verdicts[k] = removed;
                    stale |= removed;
                }
            }
        }
        if stale {
            chase = self.rebuilt_chase(si, &state, guard)?;
        }
        Ok((SlotPlan::Swap(Box::new((chase, state))), why))
    }

    /// A fresh chase of slot `si` from substate `state` (the rollback /
    /// rebuild path), emitting into the hub's live tracer.
    fn rebuilt_chase(
        &self,
        si: usize,
        state: &DatabaseState,
        guard: &Guard,
    ) -> Result<IncrementalChase, ExecError> {
        let tracer = self.engine.observability().tracer.clone();
        if self.shared.whole {
            self.engine.chase_whole(state, guard)
        } else {
            let ir = self.engine.ir().expect("block slots imply an IR partition");
            self.engine.chase_block(ir, si, state, guard, tracer)
        }
    }

    /// After a completed op: asks the sink whether a snapshot is due and,
    /// if so, quiesces every block and hands over a consistent cut.
    /// Called with no slot lock held.
    fn sink_op_finished(&self) -> Result<(), ExecError> {
        let Some(sink) = &self.shared.sink else {
            return Ok(());
        };
        if !sink.op_finished()? {
            return Ok(());
        }
        // Quiesce: publish-lock first (lock order), then every block in
        // index order. Holding all block locks means no writer is inside
        // log_op, so the assembled state covers exactly the logged
        // prefix — the rotation the sink performs is safe.
        let _publish = self
            .shared
            .publish
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slots: Vec<_> = self.shared.slots.iter().map(lock_slot).collect();
        let mut state = DatabaseState::empty(self.engine.scheme());
        for s in &slots {
            for (i, t) in s.state.iter_all() {
                state
                    .insert(i, t.clone())
                    .expect("slot substates are projections of one scheme-valid state");
            }
        }
        sink.write_snapshot(&state)
    }
}

impl<'e> WriteHandle<'e> {
    /// The engine behind this handle.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// A hub facade over the same shared state (for queries, explain,
    /// verdicts). Cheap — an `Arc` clone.
    fn hub(&self) -> Hub<'e> {
        Hub {
            engine: self.engine,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Inserts `t` into relation `i` through the block's serialized
    /// write lane. Same verdict contract as `Session::insert`:
    /// `Ok(true)` accepted, `Ok(false)` rejected (state unchanged),
    /// `Err(Inconsistent)` when the block is already poisoned, other
    /// `Err`s are guard trips with the op rolled back.
    pub fn insert(&self, i: usize, t: Tuple, guard: &Guard) -> Result<bool, ExecError> {
        self.insert_timed(i, t, guard, &Arc::new(OpTimeline::new()))
    }

    /// [`insert`](WriteHandle::insert) with a caller-owned
    /// [`OpTimeline`]: the caller stamps [`Phase::Enqueue`] when it
    /// queues the op; this method installs the timeline as the thread's
    /// current op so every pipeline layer (block lock, WAL, group
    /// commit) stamps its phase, then folds the completed timeline into
    /// the per-phase histograms.
    pub fn insert_timed(
        &self,
        i: usize,
        t: Tuple,
        guard: &Guard,
        tl: &Arc<OpTimeline>,
    ) -> Result<bool, ExecError> {
        let _cur = timeline::set_current(tl);
        let t0 = Instant::now();
        let hub = self.hub();
        let (accepted, _) = hub.insert_op(i, t, guard)?;
        hub.sink_op_finished()?;
        // Publish = the visibility handoff: the op's effect is marked
        // for the next epoch cut and any due snapshot has been taken.
        tl.stamp(Phase::Publish);
        hub.emit_insert_event(i, accepted, t0, guard);
        if let Some(hm) = &self.shared.metrics {
            hm.record_timeline(tl);
        }
        Ok(accepted)
    }

    /// Removes `t` from relation `i`. Same contract as
    /// `Session::delete`: `Ok(false)` when absent, `Err` on a guard trip
    /// with the delete rolled back.
    pub fn delete(&self, i: usize, t: &Tuple, guard: &Guard) -> Result<bool, ExecError> {
        self.delete_timed(i, t, guard, &Arc::new(OpTimeline::new()))
    }

    /// [`delete`](WriteHandle::delete) with a caller-owned
    /// [`OpTimeline`] — see [`insert_timed`](WriteHandle::insert_timed).
    pub fn delete_timed(
        &self,
        i: usize,
        t: &Tuple,
        guard: &Guard,
        tl: &Arc<OpTimeline>,
    ) -> Result<bool, ExecError> {
        let _cur = timeline::set_current(tl);
        let hub = self.hub();
        let removed = hub.delete_op(i, t, guard)?;
        hub.sink_op_finished()?;
        tl.stamp(Phase::Publish);
        hub.emit_delete_event(i, removed, guard);
        if let Some(hm) = &self.shared.metrics {
            hm.record_timeline(tl);
        }
        Ok(removed)
    }

    /// Applies a framed group of ops as **one unit**: one write-lock
    /// acquisition and one dirty-row chase seeding per involved block,
    /// one WAL batch (one group-commit barrier, one fsync), one
    /// aggregated [`TraceEvent::BatchApplied`] event. Returns the per-op
    /// verdicts in op order — observationally identical to applying the
    /// ops one by one through [`insert`](WriteHandle::insert) /
    /// [`delete`](WriteHandle::delete) (the `idr fuzz --batch` oracle arm
    /// pins this).
    ///
    /// On a typed error (a block already poisoned, a guard trip or a
    /// capacity trip mid-batch, a storage failure) the **whole group** is
    /// rolled back: no op of the batch is applied and nothing is logged —
    /// the batch's single rollback point sits before its WAL append, so
    /// log == memory holds without abort markers (DESIGN.md §16).
    pub fn apply_batch(&self, ops: &[BatchOp], guard: &Guard) -> Result<Vec<bool>, ExecError> {
        self.apply_batch_timed(ops, guard, &Arc::new(OpTimeline::new()))
    }

    /// [`apply_batch`](WriteHandle::apply_batch) with a caller-owned
    /// [`OpTimeline`] — see [`insert_timed`](WriteHandle::insert_timed).
    pub fn apply_batch_timed(
        &self,
        ops: &[BatchOp],
        guard: &Guard,
        tl: &Arc<OpTimeline>,
    ) -> Result<Vec<bool>, ExecError> {
        let _cur = timeline::set_current(tl);
        let hub = self.hub();
        let (verdicts, blocks) = hub.batch_op(ops, guard)?;
        hub.sink_op_finished()?;
        tl.stamp(Phase::Publish);
        let applied = verdicts.iter().filter(|&&v| v).count();
        let obs = self.engine.observability();
        obs.tracer.emit_with(|| TraceEvent::BatchApplied {
            ops: ops.len(),
            applied,
            blocks,
        });
        if let Some(hm) = &self.shared.metrics {
            let (mut accepted, mut rejected, mut deletes) = (0u64, 0u64, 0u64);
            for (op, &v) in ops.iter().zip(&verdicts) {
                match op {
                    BatchOp::Insert { .. } if v => accepted += 1,
                    BatchOp::Insert { .. } => rejected += 1,
                    BatchOp::Delete { .. } => deletes += 1,
                }
            }
            hm.inserts_accepted.add(accepted);
            hm.inserts_rejected.add(rejected);
            hm.deletes.add(deletes);
            hm.record_guard(guard);
            hm.record_timeline(tl);
        }
        Ok(verdicts)
    }

    /// An epoch-stamped read view (see [`Hub::read_view`]) — gives every
    /// writer thread snapshot-isolated queries without a hub reference.
    pub fn read_view(&self) -> ReadView<'e> {
        self.hub().read_view()
    }

    /// Whether every block's current substate is consistent.
    pub fn is_consistent(&self) -> bool {
        self.hub().is_consistent()
    }

    /// Provenance of the most recent rejected insert across all writers.
    pub fn explain_rejection(&self) -> Option<RejectionExplanation> {
        self.hub().explain_rejection()
    }
}

impl Snapshot {
    /// The epoch number this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<'e> ReadView<'e> {
    /// The engine behind this view.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The epoch this view reads — monotone across publications of one
    /// hub.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// The epoch's consistency verdict (O(1), decided at publication).
    pub fn is_consistent(&self) -> bool {
        self.snap.consistent
    }

    /// The epoch's base state.
    pub fn state(&self) -> &DatabaseState {
        &self.snap.state
    }

    /// The X-total projection `[x]` of this epoch. `Ok(None)` when the
    /// epoch is inconsistent. On IR schemes this is chase-free (the
    /// cached Theorem 4.1 expression over the snapshot state); non-IR
    /// schemes chase the snapshot — never the live tableaux, so the
    /// answer is stable no matter what writers do meanwhile.
    pub fn total_projection(
        &self,
        x: AttrSet,
        guard: &Guard,
    ) -> Result<Option<Vec<Tuple>>, ExecError> {
        let t0 = Instant::now();
        if !self.snap.consistent {
            return Ok(None);
        }
        let (result, method) = if self.engine.ir().is_some_and(|ir| !ir.is_empty()) {
            project_ir(self.engine, &self.snap.state, x, guard)?
        } else {
            (
                idr_chase::total_projection(
                    self.engine.scheme(),
                    &self.snap.state,
                    self.engine.key_deps().full(),
                    x,
                    guard,
                ),
                "chase",
            )
        };
        emit_query(self.engine, x, method, &result, t0, guard);
        result
    }
}

/// The IR query path shared by live (shim) and snapshot reads: the
/// cached Theorem 4.1 expression over `state`, falling back to one
/// whole-state chase when no bounded expression covers `x`.
type ProjectionResult = Result<Option<Vec<Tuple>>, ExecError>;

fn project_ir(
    engine: &Engine,
    state: &DatabaseState,
    x: AttrSet,
    guard: &Guard,
) -> Result<(ProjectionResult, &'static str), ExecError> {
    Ok(match engine.total_projection_expr(x, guard)? {
        Some(expr) => {
            let rel = expr
                .eval(engine.scheme(), state)
                .expect("cached projection expressions are well-formed");
            (Ok(Some(rel.sorted_tuples())), "expr")
        }
        None => (
            idr_chase::total_projection(
                engine.scheme(),
                state,
                engine.key_deps().full(),
                x,
                guard,
            ),
            "chase",
        ),
    })
}

/// The `query_answered` event + metrics every query path shares.
fn emit_query(
    engine: &Engine,
    x: AttrSet,
    method: &'static str,
    result: &ProjectionResult,
    t0: Instant,
    guard: &Guard,
) {
    if let Ok(Some(tuples)) = result {
        let obs = engine.observability();
        obs.tracer.emit_with(|| TraceEvent::QueryAnswered {
            attrs: Arc::from(engine.scheme().universe().render(x).as_str()),
            method: Arc::from(method),
            tuples: tuples.len(),
        });
        if let Some(m) = &obs.metrics {
            m.counter("session.queries").inc();
            m.counter(if method == "expr" {
                "session.queries_expr"
            } else {
                "session.queries_chase"
            })
            .inc();
            m.latency_histogram("session.query_us")
                .observe_duration(t0.elapsed());
            engine.record_guard_metrics(guard);
        }
    }
}

/// Returns the current snapshot, republishing first when writers dirtied
/// the state. The stale flag is cleared *before* the slot scan: a writer
/// landing mid-scan re-marks it and the next view republishes — at worst
/// a spurious republication, never a lost update.
fn publish_snapshot(engine: &Engine, shared: &HubShared) -> Arc<Snapshot> {
    if !shared.stale.load(Ordering::Acquire) {
        return Arc::clone(
            &shared
                .publish
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }
    let mut published = shared
        .publish
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if shared.stale.swap(false, Ordering::AcqRel) {
        let t0 = Instant::now();
        let mut state = DatabaseState::empty(engine.scheme());
        let mut consistent = true;
        for s in &shared.slots {
            let slot = lock_slot(s);
            consistent &= slot.chase.failure().is_none();
            for (i, t) in slot.state.iter_all() {
                state
                    .insert(i, t.clone())
                    .expect("slot substates are projections of one scheme-valid state");
            }
        }
        let epoch = shared.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let tuples = state.total_tuples();
        let obs = engine.observability();
        obs.tracer.emit_with(|| TraceEvent::EpochPublished {
            epoch,
            tuples,
            consistent,
        });
        if let Some(hm) = &shared.metrics {
            hm.epochs_published.inc();
            hm.epoch.set(epoch);
            hm.epoch_lag.set(0);
            hm.publish_us.observe_duration(t0.elapsed());
        }
        *published = Arc::new(Snapshot {
            epoch,
            state,
            consistent,
        });
    }
    Arc::clone(&published)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::exec::Budget;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};
    use idr_workload::generators::block_chain_scheme;

    fn two_block_scheme() -> idr_relation::DatabaseScheme {
        SchemeBuilder::new("ABCD")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "CD", ["C"])
            .build()
            .unwrap()
    }

    #[test]
    fn read_views_are_snapshot_isolated_and_epoch_stamped() {
        let db = two_block_scheme();
        let engine = Engine::new(db.clone());
        let g = Guard::unlimited();
        let mut sym = SymbolTable::new();
        let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let hub = engine.hub(&state, &g).unwrap();

        let v0 = hub.read_view();
        assert_eq!(v0.epoch(), 0);
        assert_eq!(v0.state().total_tuples(), 1);

        let w = hub.write_handle();
        let u = db.universe();
        let t = Tuple::from_pairs([
            (u.attr_of("C"), sym.intern("c")),
            (u.attr_of("D"), sym.intern("d")),
        ]);
        assert!(w.insert(1, t, &g).unwrap());

        // The old view still reads epoch 0; a new view sees the insert.
        assert_eq!(v0.state().total_tuples(), 1);
        let v1 = hub.read_view();
        assert!(v1.epoch() > v0.epoch());
        assert_eq!(v1.state().total_tuples(), 2);
        // No writes since: the same epoch is re-served, not republished.
        assert_eq!(hub.read_view().epoch(), v1.epoch());
    }

    #[test]
    fn concurrent_block_writers_commute() {
        let db = block_chain_scheme(4, 3);
        let engine = Engine::new(db.clone());
        let g = Guard::unlimited();
        let hub = engine.hub(&DatabaseState::empty(&db), &g).unwrap();
        let symbols = std::sync::Mutex::new(SymbolTable::new());
        let w = hub.write_handle();
        std::thread::scope(|s| {
            for k in 0..4usize {
                let w = w.clone();
                let symbols = &symbols;
                let db = &db;
                let g = &g;
                s.spawn(move || {
                    for e in 0..3usize {
                        let i = k * 3; // first relation of block k
                        let t = {
                            let mut sym = symbols.lock().unwrap();
                            Tuple::from_pairs(db.scheme(i).attrs().iter().map(|a| {
                                (
                                    a,
                                    sym.intern(&format!(
                                        "{}_{e}",
                                        db.universe().name(a)
                                    )),
                                )
                            }))
                        };
                        assert!(w.insert(i, t, g).unwrap());
                    }
                });
            }
        });
        let v = hub.read_view();
        assert!(v.is_consistent());
        assert_eq!(v.state().total_tuples(), 12);
    }

    #[test]
    fn rejected_insert_leaves_the_epoch_unchanged() {
        let db = two_block_scheme();
        let engine = Engine::new(db.clone());
        let g = Guard::unlimited();
        let mut sym = SymbolTable::new();
        let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let hub = engine.hub(&state, &g).unwrap();
        let w = hub.write_handle();
        let u = db.universe();
        let bad = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("B"), sym.intern("b2")),
        ]);
        let before = hub.read_view().epoch();
        assert!(!w.insert(0, bad, &g).unwrap());
        assert!(w.explain_rejection().is_some());
        let v = hub.read_view();
        assert_eq!(v.epoch(), before, "a rejected insert publishes nothing");
        assert_eq!(v.state().total_tuples(), 1);
        assert!(v.is_consistent());
    }

    #[test]
    fn guard_trip_rolls_back_and_aborts_nothing_visible() {
        // star(3) with a shared hub value: any rebuild fires fd rules, so
        // max_chase_steps(0) trips mid-insert.
        let db = idr_workload::generators::star_scheme(3);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R0", &[("K", "k"), ("A0", "x0")]),
                ("R1", &[("K", "k"), ("A1", "x1")]),
                ("R2", &[("K", "k"), ("A2", "x2")]),
            ],
        )
        .unwrap();
        let engine = Engine::new(db.clone());
        let g = Guard::unlimited();
        let hub = engine.hub(&state, &g).unwrap();
        let w = hub.write_handle();
        let u = db.universe();
        let t = Tuple::from_pairs([
            (u.attr_of("K"), sym.intern("k")),
            (u.attr_of("A2"), sym.intern("x2b")),
        ]);
        let tight = Guard::new(Budget::unlimited().with_max_chase_steps(0));
        let err = w.insert(2, t.clone(), &tight).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }), "{err:?}");
        let v = hub.read_view();
        assert!(!v.state().relation(2).contains(&t));
        assert!(v.is_consistent());
        let x = AttrSet::from_iter([u.attr_of("K"), u.attr_of("A2")]);
        assert!(hub.explain(x, &t).is_none(), "speculative row leaked");
    }

    #[test]
    fn apply_batch_matches_per_op_application() {
        // Mixed inserts and deletes across two blocks, including a
        // rejected insert and a delete of an absent tuple: the batch
        // verdicts and final state must equal per-op serial application.
        let db = two_block_scheme();
        let engine_a = Engine::new(db.clone());
        let engine_b = Engine::new(db.clone());
        let g = Guard::unlimited();
        let mut sym = SymbolTable::new();
        let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let u = db.universe();
        let pair = |x: &str, xv: &str, y: &str, yv: &str, sym: &mut SymbolTable| {
            Tuple::from_pairs([(u.attr_of(x), sym.intern(xv)), (u.attr_of(y), sym.intern(yv))])
        };
        let ops = vec![
            BatchOp::Insert {
                rel: 1,
                t: pair("C", "c", "D", "d", &mut sym),
            },
            BatchOp::Insert {
                rel: 0,
                t: pair("A", "a2", "B", "b2", &mut sym),
            },
            // Rejected: clashes with the seeded (a, b) on key A.
            BatchOp::Insert {
                rel: 0,
                t: pair("A", "a", "B", "bX", &mut sym),
            },
            BatchOp::Delete {
                rel: 0,
                t: pair("A", "a", "B", "b", &mut sym),
            },
            // Absent: was never inserted.
            BatchOp::Delete {
                rel: 1,
                t: pair("C", "cX", "D", "dX", &mut sym),
            },
            // Accepted: the clashing (a, b) is gone by now.
            BatchOp::Insert {
                rel: 0,
                t: pair("A", "a", "B", "bX", &mut sym),
            },
        ];

        let hub_a = engine_a.hub(&state, &g).unwrap();
        let batch_verdicts = hub_a.write_handle().apply_batch(&ops, &g).unwrap();

        let hub_b = engine_b.hub(&state, &g).unwrap();
        let wb = hub_b.write_handle();
        let serial_verdicts: Vec<bool> = ops
            .iter()
            .map(|op| match op {
                BatchOp::Insert { rel, t } => wb.insert(*rel, t.clone(), &g).unwrap(),
                BatchOp::Delete { rel, t } => wb.delete(*rel, t, &g).unwrap(),
            })
            .collect();

        assert_eq!(batch_verdicts, serial_verdicts);
        assert_eq!(batch_verdicts, vec![true, true, false, true, false, true]);
        let va = hub_a.read_view();
        let vb = hub_b.read_view();
        assert_eq!(va.is_consistent(), vb.is_consistent());
        let dump = |v: &ReadView<'_>| {
            let mut all: Vec<(usize, Tuple)> =
                v.state().iter_all().map(|(i, t)| (i, t.clone())).collect();
            all.sort();
            all
        };
        assert_eq!(dump(&va), dump(&vb));
        assert!(hub_a.explain_rejection().is_some(), "rejection provenance kept");
    }

    #[test]
    fn apply_batch_rolls_back_whole_group_on_guard_trip() {
        let db = idr_workload::generators::star_scheme(3);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R0", &[("K", "k"), ("A0", "x0")]),
                ("R1", &[("K", "k"), ("A1", "x1")]),
            ],
        )
        .unwrap();
        let engine = Engine::new(db.clone());
        let g = Guard::unlimited();
        let hub = engine.hub(&state, &g).unwrap();
        let w = hub.write_handle();
        let u = db.universe();
        let t = Tuple::from_pairs([
            (u.attr_of("K"), sym.intern("k")),
            (u.attr_of("A2"), sym.intern("x2")),
        ]);
        let ops = vec![BatchOp::Insert { rel: 2, t: t.clone() }];
        let tight = Guard::new(Budget::unlimited().with_max_chase_steps(0));
        let err = w.apply_batch(&ops, &tight).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }), "{err:?}");
        let v = hub.read_view();
        assert!(v.is_consistent());
        assert!(!v.state().relation(2).contains(&t), "speculative op leaked");
        // The hub is fully usable afterwards: the same batch under a
        // real guard applies.
        assert_eq!(w.apply_batch(&ops, &g).unwrap(), vec![true]);
        assert!(hub.read_view().state().relation(2).contains(&t));
    }

    #[test]
    fn whole_state_backend_serves_reads_and_writes() {
        // Example 2: rejected by Algorithm 6 — one whole-state slot.
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let engine = Engine::new(db.clone());
        assert!(engine.ir().is_none());
        let g = Guard::unlimited();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b"), ("C", "c")]),
            ],
        )
        .unwrap();
        let hub = engine.hub(&state, &g).unwrap();
        let v = hub.read_view();
        assert!(v.is_consistent());
        // [AC] is derivable through the chase even with no AC relation —
        // and the snapshot path must agree with the one-shot engine path.
        let x = db.universe().set_of("AC");
        let via_view = v.total_projection(x, &g).unwrap().unwrap();
        let via_engine = engine.total_projection(&state, x, &g).unwrap().unwrap();
        assert_eq!(via_view, via_engine);
        let u = db.universe();
        let t = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a2")),
            (u.attr_of("B"), sym.intern("b2")),
        ]);
        assert!(hub.write_handle().insert(0, t, &g).unwrap());
        assert_eq!(hub.read_view().state().total_tuples(), 3);
    }
}
