//! Algorithm 1 — the representative instance of a consistent state on a
//! key-equivalent database scheme (§3.1).
//!
//! Lemma 3.1 (key-equivalent ⇒ BCNF) guarantees chasing such a state only
//! ever equates symbols *in whole tuples*: two rows agreeing on a key are
//! merged wholesale. [`KeRep`] materialises the chased tableau as a set of
//! partial tuples (each total on its constant attributes `C`, with the
//! padding ndvs left implicit), maintained under a key index so that
//! Algorithm 2's single-tuple selections are O(1) lookups.
//!
//! Building the representation doubles as the consistency test: a merge
//! that exposes two distinct constants under the same key is exactly a
//! chase inconsistency (Lemma 3.2(c) fails only for inconsistent states).

use std::collections::HashMap;

use idr_relation::exec::{ExecError, Guard};
use idr_relation::{AttrSet, Tuple, Value};

/// An inconsistency found while merging (the key-equivalent analogue of a
/// chase failure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeInconsistent {
    /// The key on which two conflicting tuples agreed.
    pub key: AttrSet,
}

impl std::fmt::Display for KeInconsistent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "two tuples agree on key {:?} but conflict elsewhere", self.key)
    }
}

impl std::error::Error for KeInconsistent {}

impl From<KeInconsistent> for ExecError {
    fn from(e: KeInconsistent) -> Self {
        ExecError::Inconsistent {
            detail: e.to_string(),
        }
    }
}

/// The representative instance of a state on a key-equivalent block,
/// as produced by Algorithm 1: maximal merged tuples, any two of which
/// disagree on every key (Corollary 3.1(a)), indexed by key values.
#[derive(Clone, Debug)]
pub struct KeRep {
    /// The keys embedded in the block (deduplicated, sorted).
    keys: Vec<AttrSet>,
    /// Merged tuples; `None` marks a tuple absorbed into another.
    tuples: Vec<Option<Tuple>>,
    /// (key index, key values) → tuple slot.
    index: HashMap<(usize, Box<[Value]>), usize>,
    /// Absorbed slot → absorbing slot (path-compressed lazily by
    /// [`KeRep::resolve`]).
    redirect: HashMap<usize, usize>,
    live: usize,
}

impl KeRep {
    /// Runs Algorithm 1: builds the representative instance from the
    /// block's tuples, or reports an inconsistency
    /// ([`ExecError::Inconsistent`]).
    ///
    /// `keys` must be the keys embedded in the block's member schemes; the
    /// input tuples are each total on their member scheme (but any partial
    /// tuple total on a superset of one of its embedded keys works, which
    /// is how Algorithm 2 re-inserts its extended tuple).
    ///
    /// Every key-index probe of the merge loop is charged as one lookup
    /// against `guard`, so building a representative instance from an
    /// adversarially merge-heavy state can be cut off with a typed
    /// [`ExecError::BudgetExceeded`] instead of running arbitrarily long;
    /// [`Guard::unlimited`] is the easy default.
    pub fn build<I>(keys: &[AttrSet], tuples: I, guard: &Guard) -> Result<Self, ExecError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut keys: Vec<AttrSet> = keys.to_vec();
        keys.sort();
        keys.dedup();
        let mut rep = KeRep {
            keys,
            tuples: Vec::new(),
            index: HashMap::new(),
            redirect: HashMap::new(),
            live: 0,
        };
        for t in tuples {
            rep.insert_merge(t, guard)?;
        }
        Ok(rep)
    }

    /// The block's keys.
    pub fn keys(&self) -> &[AttrSet] {
        &self.keys
    }

    /// Number of (live, merged) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the representative instance is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates the merged tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter().filter_map(Option::as_ref)
    }

    /// Looks up the unique tuple agreeing with `probe` on key `k` (which
    /// must be one of the block's keys and a subset of `probe.attrs()`).
    /// Uniqueness is Lemma 3.2(c).
    pub fn lookup(&self, k: AttrSet, probe: &Tuple) -> Option<&Tuple> {
        let ki = self.key_index(k)?;
        let vals = Self::key_values(k, probe)?;
        self.index
            .get(&(ki, vals))
            .and_then(|&slot| self.tuples[self.resolve(slot)].as_ref())
    }

    /// Inserts a tuple, merging with any tuples agreeing on a key — the
    /// incremental form of Algorithm 1. Fails with
    /// [`ExecError::Inconsistent`] iff the merged state is inconsistent;
    /// charges one lookup per key-index probe against `guard`.
    pub fn insert_merge(&mut self, t: Tuple, guard: &Guard) -> Result<(), ExecError> {
        let slot = self.tuples.len();
        self.tuples.push(Some(t));
        self.live += 1;
        let mut work = vec![slot];
        while let Some(s) = work.pop() {
            let s = self.resolve(s);
            let Some(t) = self.tuples[s].clone() else {
                continue;
            };
            for ki in 0..self.keys.len() {
                let k = self.keys[ki];
                if !k.is_subset(t.attrs()) {
                    continue;
                }
                let Some(vals) = Self::key_values(k, &t) else {
                    continue;
                };
                guard.lookup()?;
                let entry = (ki, vals);
                match self.index.get(&entry).copied() {
                    None => {
                        self.index.insert(entry, s);
                    }
                    Some(other_slot) => {
                        let other = self.resolve(other_slot);
                        if other == s {
                            self.index.insert(entry, s);
                            continue;
                        }
                        // Merge `other` into `s` (whole-tuple fd-rule: the
                        // two rows agree on the key K, and K functionally
                        // determines every attribute of the block).
                        let u = self.tuples[other]
                            .take()
                            .expect("live slot by resolve invariant");
                        self.live -= 1;
                        let merged = self.tuples[s]
                            .as_ref()
                            .expect("live slot")
                            .join(&u)
                            .ok_or(KeInconsistent { key: k })?;
                        self.tuples[s] = Some(merged);
                        self.index.insert(entry, s);
                        // Redirect future lookups of `other` and re-process
                        // `s`, whose attribute set may now embed new keys.
                        self.redirect.insert(other, s);
                        work.push(s);
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    fn key_index(&self, k: AttrSet) -> Option<usize> {
        self.keys.iter().position(|&x| x == k)
    }

    fn key_values(k: AttrSet, t: &Tuple) -> Option<Box<[Value]>> {
        let mut vals = Vec::with_capacity(k.len());
        for a in k.iter() {
            vals.push(t.get(a)?);
        }
        Some(vals.into_boxed_slice())
    }

    fn resolve(&self, mut slot: usize) -> usize {
        while let Some(&next) = self.redirect.get(&slot) {
            slot = next;
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::{SymbolTable, Universe};

    fn tup(u: &Universe, s: &mut SymbolTable, pairs: &[(&str, &str)]) -> Tuple {
        Tuple::from_pairs(pairs.iter().map(|&(a, v)| (u.attr_of(a), s.intern(v))))
    }

    /// Example 4/7's key set: A, E, BC, D all equivalent.
    fn keys(u: &Universe) -> Vec<AttrSet> {
        vec![u.set_of("A"), u.set_of("E"), u.set_of("BC"), u.set_of("D")]
    }

    #[test]
    fn merges_tuples_sharing_a_key() {
        let u = Universe::of_chars("ABCDE");
        let mut s = SymbolTable::new();
        let rep = KeRep::build(
            &keys(&u),
            [
                tup(&u, &mut s, &[("A", "a"), ("B", "b")]),
                tup(&u, &mut s, &[("A", "a"), ("C", "c")]),
            ],
            &Guard::unlimited(),
        )
        .unwrap();
        assert_eq!(rep.len(), 1);
        let t = rep.iter().next().unwrap();
        assert_eq!(t.attrs(), u.set_of("ABC"));
    }

    #[test]
    fn cascading_merge_through_new_keys() {
        // AB + AC merge on A into ABC, which now embeds key BC, pulling in
        // the BCD tuple — the cascade behind Example 7's extension joins.
        let u = Universe::of_chars("ABCDE");
        let mut s = SymbolTable::new();
        let rep = KeRep::build(
            &keys(&u),
            [
                tup(&u, &mut s, &[("B", "b"), ("C", "c"), ("D", "d")]),
                tup(&u, &mut s, &[("A", "a"), ("B", "b")]),
                tup(&u, &mut s, &[("A", "a"), ("C", "c")]),
            ],
            &Guard::unlimited(),
        )
        .unwrap();
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.iter().next().unwrap().attrs(), u.set_of("ABCD"));
    }

    #[test]
    fn distinct_key_values_stay_separate() {
        let u = Universe::of_chars("ABCDE");
        let mut s = SymbolTable::new();
        let rep = KeRep::build(
            &keys(&u),
            [
                tup(&u, &mut s, &[("A", "a1"), ("B", "b1")]),
                tup(&u, &mut s, &[("A", "a2"), ("B", "b2")]),
            ],
            &Guard::unlimited(),
        )
        .unwrap();
        assert_eq!(rep.len(), 2);
    }

    #[test]
    fn conflict_under_key_is_inconsistent() {
        let u = Universe::of_chars("ABCDE");
        let mut s = SymbolTable::new();
        let err = KeRep::build(
            &keys(&u),
            [
                tup(&u, &mut s, &[("A", "a"), ("B", "b1")]),
                tup(&u, &mut s, &[("A", "a"), ("B", "b2")]),
            ],
            &Guard::unlimited(),
        )
        .unwrap_err();
        match err {
            idr_relation::exec::ExecError::Inconsistent { detail } => {
                assert!(detail.contains("key"), "detail: {detail}");
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn lookup_by_any_embedded_key() {
        let u = Universe::of_chars("ABCDE");
        let mut s = SymbolTable::new();
        let rep = KeRep::build(
            &keys(&u),
            [
                tup(&u, &mut s, &[("A", "a"), ("B", "b")]),
                tup(&u, &mut s, &[("A", "a"), ("C", "c")]),
            ],
            &Guard::unlimited(),
        )
        .unwrap();
        let probe = tup(&u, &mut s, &[("B", "b"), ("C", "c")]);
        let found = rep.lookup(u.set_of("BC"), &probe).unwrap();
        assert_eq!(found.attrs(), u.set_of("ABC"));
        let probe_a = tup(&u, &mut s, &[("A", "a")]);
        assert!(rep.lookup(u.set_of("A"), &probe_a).is_some());
        let probe_miss = tup(&u, &mut s, &[("A", "zz")]);
        assert!(rep.lookup(u.set_of("A"), &probe_miss).is_none());
    }

    #[test]
    fn no_two_tuples_agree_on_a_key() {
        // Corollary 3.1(a)/Lemma 3.2(c) invariant, checked exhaustively.
        let u = Universe::of_chars("ABCDE");
        let mut s = SymbolTable::new();
        let rep = KeRep::build(
            &keys(&u),
            [
                tup(&u, &mut s, &[("A", "a1"), ("B", "b")]),
                tup(&u, &mut s, &[("A", "a2"), ("C", "c")]),
                tup(&u, &mut s, &[("E", "e"), ("B", "b2")]),
                tup(&u, &mut s, &[("B", "b"), ("C", "c"), ("D", "d")]),
            ],
            &Guard::unlimited(),
        )
        .unwrap();
        let tuples: Vec<&Tuple> = rep.iter().collect();
        for (i, t1) in tuples.iter().enumerate() {
            for t2 in tuples.iter().skip(i + 1) {
                for &k in rep.keys() {
                    if k.is_subset(t1.attrs()) && k.is_subset(t2.attrs()) {
                        assert!(!t1.agrees_on(t2, k));
                    }
                }
            }
        }
    }

    #[test]
    fn empty_build() {
        let u = Universe::of_chars("AB");
        let rep = KeRep::build(&[u.set_of("A")], [], &Guard::unlimited()).unwrap();
        assert!(rep.is_empty());
    }
}
