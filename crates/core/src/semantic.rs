//! Bounded semantic oracles for the definitional forms of the paper's
//! scheme properties.
//!
//! *Independence* is defined semantically — `LSAT(R, F) = WSAT(R, F)`
//! (§2.7) — and then characterised syntactically by the uniqueness
//! condition. [`find_independence_counterexample`] searches the bounded
//! fragment of `LSAT` (up to two tuples per relation over a two-value
//! domain per attribute) for a locally consistent, globally inconsistent
//! state. It can refute independence but not prove it; the property tests
//! use it one-sidedly: whenever the uniqueness condition claims
//! independence, no small counterexample may exist — and whenever it finds
//! a violation pair, a counterexample usually materialises, confirming
//! the syntactic verdict.

use idr_chase::is_consistent;
use idr_relation::exec::Guard;
use idr_fd::{project::project_fds, KeyDeps};
use idr_relation::{DatabaseScheme, DatabaseState, SymbolTable, Tuple};

/// Budget guard: number of candidate tuples per relation scheme in the
/// bounded search.
const VALUES_PER_ATTR: usize = 2;

/// Searches for a locally consistent but globally inconsistent state with
/// at most `max_tuples_per_relation` tuples per relation, all values drawn
/// from a two-value domain per attribute. Returns the
/// witness state, or `None` when the bounded fragment is clean.
///
/// Cost is exponential in `Σ (choices per relation)`; intended for schemes
/// with ≤ 4 relations of width ≤ 3 (the property-test regime).
pub fn find_independence_counterexample(
    scheme: &DatabaseScheme,
    kd: &KeyDeps,
    symbols: &mut SymbolTable,
    max_tuples_per_relation: usize,
) -> Option<DatabaseState> {
    // All candidate tuples per relation.
    let mut candidates: Vec<Vec<Tuple>> = Vec::with_capacity(scheme.len());
    for s in scheme.schemes() {
        let attrs: Vec<_> = s.attrs().iter().collect();
        let mut tuples = Vec::new();
        let combos = VALUES_PER_ATTR.pow(attrs.len() as u32);
        for c in 0..combos {
            let mut rem = c;
            let t = Tuple::from_pairs(attrs.iter().map(|&a| {
                let v = rem % VALUES_PER_ATTR;
                rem /= VALUES_PER_ATTR;
                (
                    a,
                    symbols.intern(&format!("{}#{}", scheme.universe().name(a), v)),
                )
            }));
            tuples.push(t);
        }
        candidates.push(tuples);
    }

    // Per relation: the locally consistent subsets of candidates of size
    // ≤ max_tuples_per_relation (local consistency = satisfies F⁺|Rᵢ).
    let mut local_choices: Vec<Vec<Vec<Tuple>>> = Vec::with_capacity(scheme.len());
    for (i, s) in scheme.schemes().iter().enumerate() {
        let projected = project_fds(kd.full(), s.attrs());
        let n = candidates[i].len();
        assert!(n <= 16, "semantic oracle: relation domain too large");
        let mut subsets = Vec::new();
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize > max_tuples_per_relation {
                continue;
            }
            let chosen: Vec<Tuple> = (0..n)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| candidates[i][b].clone())
                .collect();
            // Local satisfaction of the projected dependencies.
            let ok = chosen.iter().enumerate().all(|(x, t1)| {
                chosen.iter().skip(x + 1).all(|t2| {
                    projected.fds().iter().all(|fd| {
                        !t1.agrees_on(t2, fd.lhs) || t1.agrees_on(t2, fd.rhs)
                    })
                })
            });
            if ok {
                subsets.push(chosen);
            }
        }
        local_choices.push(subsets);
    }

    // Cartesian search over per-relation choices.
    fn rec(
        scheme: &DatabaseScheme,
        kd: &KeyDeps,
        local: &[Vec<Vec<Tuple>>],
        i: usize,
        acc: &mut DatabaseState,
    ) -> Option<DatabaseState> {
        if i == local.len() {
            if !is_consistent(scheme, acc, kd.full(), &Guard::unlimited()).unwrap() {
                return Some(acc.clone());
            }
            return None;
        }
        for choice in &local[i] {
            let snapshot = acc.clone();
            for t in choice {
                let _ = acc.insert(i, t.clone());
            }
            if let Some(w) = rec(scheme, kd, local, i + 1, acc) {
                return Some(w);
            }
            *acc = snapshot;
        }
        None
    }

    let mut acc = DatabaseState::empty(scheme);
    rec(scheme, kd, &local_choices, 0, &mut acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_fd::normal::satisfies_uniqueness;
    use idr_relation::SchemeBuilder;

    #[test]
    fn independent_scheme_has_no_counterexample() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(satisfies_uniqueness(&db, &kd));
        let mut sym = SymbolTable::new();
        assert!(find_independence_counterexample(&db, &kd, &mut sym, 2).is_none());
    }

    #[test]
    fn example3_counterexample_found() {
        // Example 3's triangle is not independent: local key satisfaction
        // does not imply global consistency.
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(!satisfies_uniqueness(&db, &kd));
        let mut sym = SymbolTable::new();
        let w = find_independence_counterexample(&db, &kd, &mut sym, 2)
            .expect("a 2-value counterexample exists");
        // The witness really is locally consistent (by construction) and
        // globally inconsistent.
        assert!(!is_consistent(&db, &w, kd.full(), &Guard::unlimited()).unwrap());
        assert!(w.total_tuples() >= 2);
    }

    #[test]
    fn example1_r_counterexample_found() {
        // R of Example 1 is not independent either; restrict the search
        // to the three interacting schemes to keep it cheap by dropping
        // R4/R5 tuples (the search naturally finds small witnesses first).
        let db = SchemeBuilder::new("CTHR")
            .scheme("R1", "HRC", ["HR"])
            .scheme("R2", "HTR", ["HT", "HR"])
            .scheme("R3", "HTC", ["HT"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(!satisfies_uniqueness(&db, &kd));
        let mut sym = SymbolTable::new();
        let w = find_independence_counterexample(&db, &kd, &mut sym, 1)
            .expect("a single-tuple-per-relation counterexample exists");
        assert!(!is_consistent(&db, &w, kd.full(), &Guard::unlimited()).unwrap());
    }
}
