//! Boundedness: predetermined relational expressions for X-total
//! projections (Corollary 3.1(b) and Theorem 4.1).
//!
//! For a key-equivalent scheme, `[X]` is *exactly* the union of
//! projections onto `X` of the joins of lossless subsets covering `X`
//! (Corollary 3.1(b)); since a join over a superset produces a subset of
//! the tuples, the union over *inclusion-minimal* lossless covering
//! subsets suffices. For an independence-reducible scheme, Theorem 4.1
//! lifts this to two levels: enumerate lossless covering families of
//! *blocks*, compute each block's `[Yⱼ]` by the key-equivalent expression,
//! and join.
//!
//! Losslessness of a subset is decided by the all-dv-row chase criterion
//! with the scheme's key dependencies (§2.3). Note the chase may route
//! equalities through attributes *outside* the subset's union (the paper's
//! own Example 4 needs `BC→D, D→A` to justify `π_AE(AB ⋈ AC ⋈ BE ⋈ CE)`),
//! so the test chases over the full universe rather than projecting the
//! dependencies.
//!
//! Every entry point takes an execution context (`&Guard`): the `2ⁿ`
//! subset enumeration is charged against the guard's enumeration budget up
//! front (with [`DEFAULT_MAX_ENUMERATION`] as the backstop when the budget
//! is unlimited), and deadline/cancellation is checked per candidate
//! subset. [`Guard::unlimited`] is the easy default.

use idr_chase::lossless::dv_closures;
use idr_fd::{FdSet, KeyDeps};
use idr_relation::algebra::Expr;
use idr_relation::exec::{ExecError, FaultKind, Guard, Resource, DEFAULT_MAX_ENUMERATION};
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, Relation};

use crate::recognition::IrScheme;

/// Size bound historically enforced by assertion; families beyond it now
/// trip the guard's enumeration budget instead.
pub const MAX_COVER_FAMILY: usize = 16;

/// Enumerates the inclusion-minimal subsets of `family` that cover `x` and
/// are lossless with respect to `fds` (chase all-dv criterion over the
/// subset's union). Returned as index lists into `family`, in a canonical
/// order (by size, then lexicographically).
pub fn minimal_lossless_covers(
    family: &[AttrSet],
    fds: &FdSet,
    x: AttrSet,
    guard: &Guard,
) -> Result<Vec<Vec<usize>>, ExecError> {
    charge_family(family.len(), guard)?;
    covers_impl(family, fds, x, true, guard)
}

/// Enumerates *all* subsets of `family` that cover `x` and are lossless —
/// no minimality filter. Theorem 3.2's maintenance construction selects
/// over every such join and keeps the greatest nonempty one, so the full
/// family is needed (for query answering, [`minimal_lossless_covers`]
/// suffices since larger joins produce subsets of smaller joins' tuples).
pub fn all_lossless_covers(
    family: &[AttrSet],
    fds: &FdSet,
    x: AttrSet,
    guard: &Guard,
) -> Result<Vec<Vec<usize>>, ExecError> {
    charge_family(family.len(), guard)?;
    covers_impl(family, fds, x, false, guard)
}

/// Charges the `2ⁿ` cover enumeration to the guard, rejecting families too
/// large for the `u32` mask representation outright.
fn charge_family(n: usize, guard: &Guard) -> Result<(), ExecError> {
    if n > 31 {
        return Err(ExecError::BudgetExceeded {
            resource: Resource::Enumeration,
            limit: guard
                .budget()
                .max_enumeration
                .unwrap_or(DEFAULT_MAX_ENUMERATION),
            spent: u64::MAX,
        });
    }
    guard.enumeration(1u64 << n)
}

/// Shared enumeration body. `minimal` selects the inclusion-minimal search
/// (size-ordered masks, superset skip); the guard is checked per candidate
/// subset for deadline/cancellation.
fn covers_impl(
    family: &[AttrSet],
    fds: &FdSet,
    x: AttrSet,
    minimal: bool,
    guard: &Guard,
) -> Result<Vec<Vec<usize>>, ExecError> {
    let n = family.len();
    let mut masks: Vec<u32> = (1u32..(1 << n)).collect();
    if minimal {
        masks.sort_by_key(|m| (m.count_ones(), *m));
    }
    let mut accepted: Vec<u32> = Vec::new();
    let mut out: Vec<Vec<usize>> = Vec::new();
    'next: for mask in masks {
        guard.checkpoint()?;
        // Skip supersets of already-accepted (minimal) covers.
        for &a in &accepted {
            if a & mask == a {
                continue 'next;
            }
        }
        let members: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let union = members
            .iter()
            .fold(AttrSet::empty(), |acc, &i| acc | family[i]);
        if !x.is_subset(union) {
            continue;
        }
        let subset: Vec<AttrSet> = members.iter().map(|&i| family[i]).collect();
        let dv = dv_closures(&subset, fds);
        if dv.iter().any(|&c| union.is_subset(c)) {
            if minimal {
                accepted.push(mask);
            }
            out.push(members);
        }
    }
    Ok(out)
}

/// Corollary 3.1(b): the relational expression computing the X-total
/// projection `[X]` over a *key-equivalent* subset of the database scheme
/// (`block`, by scheme indices). Returns `Ok(None)` when no lossless
/// subset covers `X`, in which case `[X]` is empty on every consistent
/// state.
pub fn ke_total_projection_expr(
    scheme: &DatabaseScheme,
    kd: &KeyDeps,
    block: &[usize],
    x: AttrSet,
    guard: &Guard,
) -> Result<Option<Expr>, ExecError> {
    if x.is_empty() {
        return Ok(None);
    }
    let family: Vec<AttrSet> = block.iter().map(|&i| scheme.scheme(i).attrs()).collect();
    let fds = kd.for_subset(block);
    let covers = minimal_lossless_covers(&family, &fds, x, guard)?;
    if covers.is_empty() {
        return Ok(None);
    }
    let exprs: Vec<Expr> = covers
        .iter()
        .map(|members| {
            let indices: Vec<usize> = members.iter().map(|&m| block[m]).collect();
            Expr::sequential(&indices).project(x)
        })
        .collect();
    Ok(Some(Expr::union_all(exprs)))
}

/// Theorem 4.1: the relational expression computing `[X]` over an
/// independence-reducible scheme. Enumerates minimal lossless covering
/// families of blocks; within each family, block `j` contributes its
/// `Yⱼ`-total projection where
/// `Yⱼ = Dⱼ ∩ (D₁ ∪ … ∪ Dⱼ₋₁ ∪ Dⱼ₊₁ ∪ … ∪ X)`,
/// computed by the key-equivalent expression. Returns `Ok(None)` when
/// `[X]` is empty on every consistent state.
pub fn ir_total_projection_expr(
    scheme: &DatabaseScheme,
    kd: &KeyDeps,
    ir: &IrScheme,
    x: AttrSet,
    guard: &Guard,
) -> Result<Option<Expr>, ExecError> {
    if x.is_empty() {
        return Ok(None);
    }
    // Block-level embedded cover: every block key maps to its block union.
    let block_fds = (0..ir.len())
        .map(|b| crate::recognition::block_key_fds(ir, b))
        .fold(FdSet::new(), |acc, f| acc.union(&f));
    let covers = minimal_lossless_covers(&ir.block_attrs, &block_fds, x, guard)?;
    if covers.is_empty() {
        return Ok(None);
    }
    let mut alternatives: Vec<Expr> = Vec::new();
    'covers: for v in &covers {
        let mut sub_exprs: Vec<Expr> = Vec::new();
        for (pos, &b) in v.iter().enumerate() {
            let mut others = x;
            for (pos2, &b2) in v.iter().enumerate() {
                if pos2 != pos {
                    others |= ir.block_attrs[b2];
                }
            }
            let y_j = ir.block_attrs[b] & others;
            if y_j.is_empty() {
                // A block sharing nothing with the query or the other
                // blocks contributes no join attributes; the cover cannot
                // have been minimal-and-connected, skip it defensively.
                continue 'covers;
            }
            let sub = ke_total_projection_expr(scheme, kd, &ir.partition[b], y_j, guard)?
                .expect("a key-equivalent block always covers subsets of its union");
            sub_exprs.push(sub);
        }
        let mut joined = sub_exprs.remove(0);
        for e in sub_exprs {
            joined = joined.join(e);
        }
        alternatives.push(joined.project(x));
    }
    if alternatives.is_empty() {
        return Ok(None);
    }
    Ok(Some(Expr::union_all(alternatives)))
}

/// Evaluates the Theorem 4.1 expression over a state: the bounded,
/// chase-free computation of `[X]`. Returns an empty relation over `x`
/// when no expression exists. An evaluation error (an internally malformed
/// expression — never expected from this module's own construction)
/// surfaces as a permanent [`ExecError::Faulted`].
pub fn ir_total_projection(
    scheme: &DatabaseScheme,
    kd: &KeyDeps,
    ir: &IrScheme,
    state: &DatabaseState,
    x: AttrSet,
    guard: &Guard,
) -> Result<Relation, ExecError> {
    match ir_total_projection_expr(scheme, kd, ir, x, guard)? {
        Some(expr) => expr.eval(scheme, state).map_err(|e| ExecError::Faulted {
            kind: FaultKind::Permanent,
            operation: format!("relational expression evaluation: {e}"),
            attempts: 1,
        }),
        None => Ok(Relation::new(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognition::recognize;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    /// Example 4/7's scheme.
    fn example4() -> DatabaseScheme {
        SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap()
    }

    #[test]
    fn example4_ae_projection_structure() {
        // [AE] = R3 ∪ π_AE(AB ⋈ AC ⋈ (BE ⋈ CE)) — i.e. exactly two
        // minimal lossless covers of AE: {R3} and {R1, R2, R4, R5}.
        let db = example4();
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..7).collect();
        let family: Vec<AttrSet> = block.iter().map(|&i| db.scheme(i).attrs()).collect();
        let covers = minimal_lossless_covers(
            &family,
            kd.full(),
            db.universe().set_of("AE"),
            &Guard::unlimited(),
        )
        .unwrap();
        assert!(covers.contains(&vec![2]), "R3 alone covers AE: {covers:?}");
        assert!(
            covers.contains(&vec![0, 1, 3, 4]),
            "AB ⋈ AC ⋈ BE ⋈ CE is the second cover: {covers:?}"
        );
    }

    #[test]
    fn example4_ae_projection_semantics() {
        // On a state exercising the second cover, the expression agrees
        // with the chase.
        let db = example4();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert_eq!(ir.len(), 1);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("A", "a"), ("C", "c")]),
                ("R4", &[("E", "e"), ("B", "b")]),
                ("R5", &[("E", "e"), ("C", "c")]),
            ],
        )
        .unwrap();
        let x = db.universe().set_of("AE");
        let g = Guard::unlimited();
        let fast = ir_total_projection(&db, &kd, &ir, &state, x, &g).unwrap();
        let oracle = idr_chase::total_projection(&db, &state, kd.full(), x, &g)
            .unwrap()
            .unwrap();
        assert_eq!(fast.sorted_tuples(), oracle);
        assert_eq!(fast.len(), 1, "derives <a, e> through keys BC and A");
    }

    #[test]
    fn example12_acg_projection() {
        // Example 12: D = {D1(ABCD), D2(DEFG)}; the ACG expression is
        // π_ACG((π_ACD(R1⋈R2⋈R4) ∪ π_ACD(R3⋈R4)) ⋈ π_DG(R6)).
        let db = SchemeBuilder::new("ABCDEFG")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .scheme("R4", "AD", ["A"])
            .scheme("R5", "DEF", ["D"])
            .scheme("R6", "DEG", ["D"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let u = db.universe();
        let x = u.set_of("ACG");
        let g = Guard::unlimited();

        // Block-level: the only minimal lossless cover of ACG is {D1, D2}.
        let block_fds = (0..ir.len())
            .map(|b| crate::recognition::block_key_fds(&ir, b))
            .fold(idr_fd::FdSet::new(), |acc, f| acc.union(&f));
        let covers = minimal_lossless_covers(&ir.block_attrs, &block_fds, x, &g).unwrap();
        assert_eq!(covers, vec![vec![0, 1]]);

        // Y1 = ACD within block 1 has exactly the two covers of the paper.
        let y1 = u.set_of("ACD");
        let family: Vec<AttrSet> = ir.partition[0]
            .iter()
            .map(|&i| db.scheme(i).attrs())
            .collect();
        let b_covers = minimal_lossless_covers(&family, &ir.block_fds[0], y1, &g).unwrap();
        assert!(b_covers.contains(&vec![2, 3]), "{b_covers:?}"); // R3 ⋈ R4
        assert!(b_covers.contains(&vec![0, 1, 3]), "{b_covers:?}"); // R1⋈R2⋈R4

        // Semantics against the chase on a populated state.
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b"), ("C", "c")]),
                ("R4", &[("A", "a"), ("D", "d")]),
                ("R6", &[("D", "d"), ("E", "e"), ("G", "g")]),
            ],
        )
        .unwrap();
        let fast = ir_total_projection(&db, &kd, &ir, &state, x, &g).unwrap();
        let oracle = idr_chase::total_projection(&db, &state, kd.full(), x, &g)
            .unwrap()
            .unwrap();
        assert_eq!(fast.sorted_tuples(), oracle);
        assert_eq!(fast.len(), 1, "derives <a, c, g>");
    }

    #[test]
    fn uncoverable_projection_is_empty() {
        // Two disconnected independent blocks: no lossless cover spans
        // them, so [AC] is always empty.
        let db = SchemeBuilder::new("ABCD")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "CD", ["C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let x = db.universe().set_of("AC");
        let g = Guard::unlimited();
        assert!(ir_total_projection_expr(&db, &kd, &ir, x, &g)
            .unwrap()
            .is_none());
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("C", "c"), ("D", "d")]),
            ],
        )
        .unwrap();
        let oracle = idr_chase::total_projection(&db, &state, kd.full(), x, &g)
            .unwrap()
            .unwrap();
        assert!(oracle.is_empty());
    }

    #[test]
    fn single_scheme_projection() {
        let db = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let x = db.universe().set_of("B");
        let expr = ir_total_projection_expr(&db, &kd, &ir, x, &Guard::unlimited())
            .unwrap()
            .unwrap();
        assert_eq!(expr.output_scheme(&db).unwrap(), x);
        assert_eq!(expr.rel_refs(), 1);
    }
}
