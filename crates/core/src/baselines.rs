//! The baseline scheme classes the paper subsumes (§5.3): Sagiv's
//! independent schemes \[S1]\[S2] and the γ-acyclic cover-embedding BCNF
//! schemes of Chan & Hernández \[CH1]. Theorems 5.2/5.3: both classes are
//! accepted by Algorithm 6.

use idr_fd::{normal, KeyDeps};
use idr_hypergraph::{gamma, Hypergraph};
use idr_relation::DatabaseScheme;

/// Whether the scheme is independent with respect to its embedded key
/// dependencies — the uniqueness condition, which characterises
/// independence for cover-embedding BCNF schemes with key dependencies
/// \[S1]\[S2].
pub fn is_independent(scheme: &DatabaseScheme, kd: &KeyDeps) -> bool {
    normal::satisfies_uniqueness(scheme, kd)
}

/// Whether the scheme is in BCNF with respect to its embedded key
/// dependencies.
pub fn is_bcnf(scheme: &DatabaseScheme, kd: &KeyDeps) -> bool {
    normal::is_bcnf(scheme, kd.full())
}

/// Whether the scheme's hypergraph is γ-acyclic.
pub fn is_gamma_acyclic(scheme: &DatabaseScheme) -> bool {
    gamma::is_gamma_acyclic(&Hypergraph::of_scheme(scheme))
}

/// The \[CH1] class: γ-acyclic, cover-embedding, BCNF.
pub fn is_gamma_acyclic_bcnf(scheme: &DatabaseScheme, kd: &KeyDeps) -> bool {
    is_gamma_acyclic(scheme) && is_bcnf(scheme, kd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognition::recognize;
    use idr_relation::SchemeBuilder;

    #[test]
    fn theorem_5_3_independent_implies_accepted() {
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("S1", "HRCT", ["HR", "HT"])
            .scheme("S2", "CSG", ["CS"])
            .scheme("S3", "HSR", ["HS"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(is_independent(&db, &kd));
        assert!(recognize(&db, &kd).is_accepted());
    }

    #[test]
    fn theorem_5_2_gamma_acyclic_bcnf_implies_accepted() {
        // A γ-acyclic BCNF chain.
        let db = SchemeBuilder::new("ABCD")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "CD", ["C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(is_gamma_acyclic_bcnf(&db, &kd));
        assert!(recognize(&db, &kd).is_accepted());
    }

    #[test]
    fn example1_r_in_neither_baseline_but_accepted() {
        // The paper's motivating point: R is neither independent nor
        // γ-acyclic, yet independence-reducible.
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("R1", "HRC", ["HR"])
            .scheme("R2", "HTR", ["HT", "HR"])
            .scheme("R3", "HTC", ["HT"])
            .scheme("R4", "CSG", ["CS"])
            .scheme("R5", "HSR", ["HS"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(!is_independent(&db, &kd));
        assert!(!is_gamma_acyclic(&db));
        assert!(recognize(&db, &kd).is_accepted());
    }

    #[test]
    fn example3_in_neither_baseline_but_accepted() {
        // Example 3: key-equivalent, not independent, not even α-acyclic.
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(!is_independent(&db, &kd));
        assert!(!is_gamma_acyclic(&db));
        assert!(!idr_hypergraph::gyo::is_alpha_acyclic(
            &Hypergraph::of_scheme(&db)
        ));
        assert!(recognize(&db, &kd).is_accepted());
    }

    #[test]
    fn key_equivalent_schemes_are_bcnf() {
        // Lemma 3.1 on Example 3.
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(is_bcnf(&db, &kd));
    }
}
