//! Key-equivalence (§3) and Algorithm 3 (scheme closures).

use idr_fd::{FdSet, KeyDeps};
use idr_relation::{AttrSet, DatabaseScheme};

/// Algorithm 3: the closure `Sⱼ⁺` of a scheme within a subset `S` of the
/// database scheme, computed over schemes — start from `Sⱼ` and repeatedly
/// absorb any `Sᵢ ∈ S` whose key is included in the running closure.
///
/// This is exactly the attribute closure of `Sⱼ` with respect to the key
/// dependencies embedded in `S`; the scheme-level formulation matters for
/// the *splitness* analysis (§3.3), which inspects which scheme completes
/// which key. Returns the closure and the order in which schemes were
/// absorbed (the "computation").
pub fn algorithm3_closure(
    scheme: &DatabaseScheme,
    subset: &[usize],
    start: usize,
) -> (AttrSet, Vec<usize>) {
    debug_assert!(subset.contains(&start));
    let mut closure = scheme.scheme(start).attrs();
    let mut absorbed = vec![start];
    let mut remaining: Vec<usize> = subset.iter().copied().filter(|&i| i != start).collect();
    loop {
        let mut progressed = false;
        remaining.retain(|&i| {
            let s = scheme.scheme(i);
            if s.attrs().is_subset(closure) {
                // Scheme adds nothing; it still counts as absorbable but
                // never changes the closure, so drop it silently.
                return false;
            }
            if s.keys().iter().any(|k| k.is_subset(closure)) {
                closure |= s.attrs();
                absorbed.push(i);
                progressed = true;
                false
            } else {
                true
            }
        });
        if !progressed {
            return (closure, absorbed);
        }
    }
}

/// Whether the subset of schemes (by index) is *key-equivalent* wrt the key
/// dependencies embedded in it: `Sᵢ⁺ = ∪S` for every member (§3).
pub fn is_key_equivalent(scheme: &DatabaseScheme, kd: &KeyDeps, subset: &[usize]) -> bool {
    let union = scheme.union_of(subset);
    let fds = kd.for_subset(subset);
    subset
        .iter()
        .all(|&i| fds.closure(scheme.scheme(i).attrs()) == union)
}

/// Whether the *whole* database scheme is key-equivalent.
pub fn whole_scheme_key_equivalent(scheme: &DatabaseScheme, kd: &KeyDeps) -> bool {
    let all: Vec<usize> = (0..scheme.len()).collect();
    is_key_equivalent(scheme, kd, &all)
}

/// The key dependencies embedded in a subset, re-exported for callers that
/// hold only scheme indices.
pub fn subset_fds(kd: &KeyDeps, subset: &[usize]) -> FdSet {
    kd.for_subset(subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::SchemeBuilder;

    fn example3() -> DatabaseScheme {
        SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap()
    }

    #[test]
    fn example3_is_key_equivalent() {
        let db = example3();
        let kd = KeyDeps::of(&db);
        assert!(whole_scheme_key_equivalent(&db, &kd));
    }

    #[test]
    fn example4_is_key_equivalent() {
        // Example 4: R = {AB, AC, AE, EB, EC, BCD, DA}, keys A/E/BC/D all
        // mutually determining.
        let db = SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(whole_scheme_key_equivalent(&db, &kd));
    }

    #[test]
    fn non_key_equivalent_pair() {
        // R1(AB) key A, R2(CD) key C: closures stay local.
        let db = SchemeBuilder::new("ABCD")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "CD", ["C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(!whole_scheme_key_equivalent(&db, &kd));
        assert!(is_key_equivalent(&db, &kd, &[0]));
        assert!(is_key_equivalent(&db, &kd, &[1]));
    }

    #[test]
    fn algorithm3_matches_fd_closure() {
        let db = example3();
        let kd = KeyDeps::of(&db);
        let subset = [0usize, 1, 2];
        for start in 0..3 {
            let (cl, _) = algorithm3_closure(&db, &subset, start);
            assert_eq!(
                cl,
                kd.for_subset(&subset)
                    .closure(db.scheme(start).attrs())
            );
        }
    }

    #[test]
    fn algorithm3_records_computation_order() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let (cl, order) = algorithm3_closure(&db, &[0, 1], 0);
        assert_eq!(cl, db.universe().set_of("ABC"));
        assert_eq!(order, vec![0, 1]);
        // From R2, R1's key A is never reached.
        let (cl, order) = algorithm3_closure(&db, &[0, 1], 1);
        assert_eq!(cl, db.universe().set_of("BC"));
        assert_eq!(order, vec![1]);
    }
}
