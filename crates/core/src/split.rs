//! Splitness (§3.3) and the efficient test of Lemma 3.8.
//!
//! A key `K` is *split in `Sᵢ⁺`* when some computation of the closure of
//! `Sᵢ` covers `K` using only schemes that do not contain `K` (the key is
//! assembled from fragments). Split-freeness characterises constant-time
//! maintainability for key-equivalent schemes (Corollary 3.3).
//!
//! Lemma 3.8 reduces the test to a chase of the scheme tableau of
//! `W = {Rp ∈ R | K ⊄ Rp}` with the key dependencies `G` embedded in `W`:
//! `K` is split (in some `Rᵢ⁺`) iff some chased row is all-dv on `K` —
//! equivalently, by the \[BMSU] dv/closure correspondence, iff
//! `K ⊆ closure_G(Wᵢ)` for some `Wᵢ ∈ W`. Both forms are implemented and
//! cross-validated.

use idr_fd::KeyDeps;
use idr_relation::{AttrSet, DatabaseScheme};

/// A split witness: the key, and the member schemes in whose closure it is
/// split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitKey {
    /// The split key.
    pub key: AttrSet,
    /// Scheme indices `i` (within the analysed subset) such that `key` is
    /// split in `Sᵢ⁺`.
    pub split_in: Vec<usize>,
}

/// Finds every split key of the subset (typically a key-equivalent block),
/// using the closure formulation of Lemma 3.8.
///
/// For each key `K` embedded in the subset: let `W` be the members not
/// containing `K` and `G` their embedded key dependencies; `K` is split in
/// `Wᵢ⁺` exactly when `K ⊆ closure_G(Wᵢ)`.
pub fn split_keys(scheme: &DatabaseScheme, kd: &KeyDeps, subset: &[usize]) -> Vec<SplitKey> {
    let mut out = Vec::new();
    let mut seen_keys = std::collections::HashSet::new();
    for &i in subset {
        for &k in scheme.scheme(i).keys() {
            if !seen_keys.insert(k) {
                continue;
            }
            let w: Vec<usize> = subset
                .iter()
                .copied()
                .filter(|&p| !k.is_subset(scheme.scheme(p).attrs()))
                .collect();
            if w.is_empty() {
                continue;
            }
            let g = kd.for_subset(&w);
            let split_in: Vec<usize> = w
                .iter()
                .copied()
                .filter(|&p| k.is_subset(g.closure(scheme.scheme(p).attrs())))
                .collect();
            if !split_in.is_empty() {
                out.push(SplitKey { key: k, split_in });
            }
        }
    }
    out
}

/// Whether the subset is split-free (§3.3): no key embedded in it is split.
///
/// # Examples
///
/// ```
/// use idr_relation::SchemeBuilder;
/// use idr_fd::KeyDeps;
/// use idr_core::split::is_split_free;
///
/// // Example 9: single-attribute keys never split.
/// let db = SchemeBuilder::new("ABC")
///     .scheme("R1", "AB", ["A", "B"])
///     .scheme("R2", "BC", ["B", "C"])
///     .build()
///     .unwrap();
/// let kd = KeyDeps::of(&db);
/// assert!(is_split_free(&db, &kd, &[0, 1]));
/// ```
pub fn is_split_free(scheme: &DatabaseScheme, kd: &KeyDeps, subset: &[usize]) -> bool {
    split_keys(scheme, kd, subset).is_empty()
}

/// Lemma 3.8 in its literal chase form, kept as an oracle: chase the scheme
/// tableau of `W` with `G` and look for a row all-dv on `K`.
pub fn split_keys_via_chase(
    scheme: &DatabaseScheme,
    kd: &KeyDeps,
    subset: &[usize],
) -> Vec<SplitKey> {
    let mut out = Vec::new();
    let mut seen_keys = std::collections::HashSet::new();
    for &i in subset {
        for &k in scheme.scheme(i).keys() {
            if !seen_keys.insert(k) {
                continue;
            }
            let w: Vec<usize> = subset
                .iter()
                .copied()
                .filter(|&p| !k.is_subset(scheme.scheme(p).attrs()))
                .collect();
            if w.is_empty() {
                continue;
            }
            let w_attrs: Vec<AttrSet> = w.iter().map(|&p| scheme.scheme(p).attrs()).collect();
            let g = kd.for_subset(&w);
            let dv = idr_chase::lossless::dv_closures(&w_attrs, &g);
            let split_in: Vec<usize> = w
                .iter()
                .copied()
                .zip(dv.iter())
                .filter(|&(_, &c)| k.is_subset(c))
                .map(|(p, _)| p)
                .collect();
            if !split_in.is_empty() {
                out.push(SplitKey { key: k, split_in });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::SchemeBuilder;

    /// Example 8: R = {R1(AC), R2(AB), R3(ABC), R4(BCD), R5(AD)}; key BC is
    /// split in R1⁺, R2⁺ and R5⁺; R3 and R4 are split-free.
    fn example8() -> DatabaseScheme {
        SchemeBuilder::new("ABCD")
            .scheme("R1", "AC", ["A"])
            .scheme("R2", "AB", ["A"])
            .scheme("R3", "ABC", ["A", "BC"])
            .scheme("R4", "BCD", ["BC", "D"])
            .scheme("R5", "AD", ["A", "D"])
            .build()
            .unwrap()
    }

    #[test]
    fn example8_split_pattern() {
        let db = example8();
        let kd = KeyDeps::of(&db);
        let subset: Vec<usize> = (0..5).collect();
        let splits = split_keys(&db, &kd, &subset);
        assert_eq!(splits.len(), 1);
        let s = &splits[0];
        assert_eq!(s.key, db.universe().set_of("BC"));
        // Split in R1⁺, R2⁺, R5⁺ — indices 0, 1, 4.
        assert_eq!(s.split_in, vec![0, 1, 4]);
        assert!(!is_split_free(&db, &kd, &subset));
    }

    #[test]
    fn example9_split_free() {
        // Example 9: chain with single-attribute keys is split-free.
        let db = SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "CD", ["C", "D"])
            .scheme("R4", "DE", ["D", "E"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let subset: Vec<usize> = (0..4).collect();
        assert!(is_split_free(&db, &kd, &subset));
    }

    #[test]
    fn example5_scheme_is_split() {
        // Examples 4/5: the 7-scheme key-equivalent R is not ctm because
        // key BC splits.
        let db = SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let subset: Vec<usize> = (0..7).collect();
        let splits = split_keys(&db, &kd, &subset);
        assert!(splits.iter().any(|s| s.key == db.universe().set_of("BC")));
        assert!(!is_split_free(&db, &kd, &subset));
    }

    #[test]
    fn chase_oracle_agrees_on_paper_examples() {
        let chain = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .build()
            .unwrap();
        for db in [example8(), chain] {
            let kd = KeyDeps::of(&db);
            let subset: Vec<usize> = (0..db.len()).collect();
            assert_eq!(
                split_keys(&db, &kd, &subset),
                split_keys_via_chase(&db, &kd, &subset)
            );
        }
    }

    #[test]
    fn example10_scheme_is_split_free() {
        // Example 10: S = {AB, BC, AC} with all-singleton keys.
        let db = SchemeBuilder::new("ABC")
            .scheme("S1", "AB", ["A", "B"])
            .scheme("S2", "BC", ["B", "C"])
            .scheme("S3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(is_split_free(&db, &kd, &[0, 1, 2]));
    }
}
