//! The maintenance algorithms: Algorithm 2 (§3.2, algebraic
//! maintainability), Algorithm 4 (§3.3.1, tuple extension) and Algorithm 5
//! (§3.3.1, constant-time maintenance), plus the block-routing maintainers
//! for independence-reducible schemes (§4.2).
//!
//! The cost model the paper cares about is the number of single-tuple
//! selections issued against the state; every entry point therefore
//! returns [`MaintenanceStats`] counting lookups and keys processed, which
//! the EXPERIMENTS.md scaling benchmarks plot against state size.
//!
//! Every entry point takes a [`Guard`]: selections are charged against its
//! budget (the unit of the paper's constant-time-maintainability cost
//! model) and transient faults of the access path are run through a
//! [`RetryPolicy`]. Pass [`Guard::unlimited`] and [`RetryPolicy::none`]
//! for the plain in-memory semantics.

use std::collections::HashMap;
use std::sync::Arc;

use idr_obs::{TraceEvent, TraceHandle};
use idr_relation::exec::{ExecError, Guard, RetryPolicy};
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, Tuple, Value};

use crate::exec::{RepAccess, StateAccess};
use crate::recognition::IrScheme;
use crate::rep::KeRep;

/// Outcome of a maintenance check for an insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaintenanceOutcome {
    /// The updated state is consistent; the witness is the total tuple the
    /// algorithm assembled (Algorithm 2's `q`, Algorithm 5's join).
    Consistent(Tuple),
    /// The updated state is inconsistent.
    Inconsistent,
}

impl MaintenanceOutcome {
    /// Whether the insertion was accepted.
    pub fn is_consistent(&self) -> bool {
        matches!(self, MaintenanceOutcome::Consistent(_))
    }
}

/// Work counters for the scaling experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Single-tuple selections issued (index lookups).
    pub lookups: usize,
    /// Keys processed.
    pub keys_processed: usize,
}

/// Algorithm 2: decides whether inserting `t` into relation `si` of a
/// *key-equivalent* block keeps the state consistent, given the block's
/// representative instance (built by Algorithm 1), generic over the
/// representative-instance access path.
///
/// The algorithm grows a total tuple `q` from `t`, joining in — for each
/// key `K` embedded in the growing closure — the unique representative-
/// instance tuple agreeing with `q` on `K`. An empty join is a rejection
/// (Theorem 3.1).
///
/// Every single-tuple selection is charged against `guard` and run through
/// `retry`: transient [`Fault`](crate::exec::Fault)s are retried with
/// backoff, permanent or persistent ones surface as
/// [`ExecError::Faulted`].
pub fn algorithm2(
    scheme: &DatabaseScheme,
    rep: &impl RepAccess,
    si: usize,
    t: &Tuple,
    guard: &Guard,
    retry: &RetryPolicy,
) -> Result<(MaintenanceOutcome, MaintenanceStats), ExecError> {
    let mut stats = MaintenanceStats::default();
    let si_attrs = scheme.scheme(si).attrs();
    debug_assert_eq!(t.attrs(), si_attrs, "inserted tuple must be total on Sᵢ");

    let mut closure = si_attrs;
    let mut q = t.clone();
    let mut processed: Vec<AttrSet> = Vec::new();
    let mut unprocessed: Vec<AttrSet> = scheme.scheme(si).keys().to_vec();

    while let Some(k) = unprocessed.pop() {
        stats.keys_processed += 1;
        stats.lookups += 1;
        guard.lookup()?;
        let v: Tuple = match retry.run(guard, || rep.select(k, &q))? {
            Some(p) => p,
            None => q.project(k),
        };
        let c = v.attrs();
        match q.join(&v) {
            Some(joined) => q = joined,
            None => return Ok((MaintenanceOutcome::Inconsistent, stats)),
        }
        closure |= c;
        processed.push(k);
        // new_keys: all block keys embedded in the closure, minus the
        // processed ones.
        for &nk in rep.keys() {
            if nk.is_subset(closure) && !processed.contains(&nk) && !unprocessed.contains(&nk) {
                unprocessed.push(nk);
            }
        }
    }
    Ok((MaintenanceOutcome::Consistent(q), stats))
}

/// A hash index over the raw tuples of a block substate: for each member
/// scheme and each of its keys, key values → tuple. This is what makes
/// Algorithm 4's selections `σ_Φ(π_X(Sᵢ))` constant-time.
///
/// The input substate must be *locally consistent* (each relation satisfies
/// its own key dependencies), so each (scheme, key, values) slot holds at
/// most one tuple; a collision is reported as a local inconsistency.
#[derive(Clone, Debug)]
pub struct StateIndex {
    /// (scheme index, attrs, keys) per member.
    members: Vec<(usize, AttrSet, Vec<AttrSet>)>,
    tuples: Vec<Tuple>,
    index: HashMap<(u32, u32, Box<[Value]>), u32>,
}

impl StateIndex {
    /// Builds the index for the given member schemes (by database-scheme
    /// index) over a state.
    ///
    /// # Errors
    ///
    /// Returns the offending scheme index if some relation violates one of
    /// its own key dependencies (the state is not even locally consistent).
    pub fn build(
        scheme: &DatabaseScheme,
        members: &[usize],
        state: &DatabaseState,
    ) -> Result<Self, usize> {
        let mut idx = StateIndex {
            members: members
                .iter()
                .map(|&i| {
                    (
                        i,
                        scheme.scheme(i).attrs(),
                        scheme.scheme(i).keys().to_vec(),
                    )
                })
                .collect(),
            tuples: Vec::new(),
            index: HashMap::new(),
        };
        for (pos, &i) in members.iter().enumerate() {
            for t in state.relation(i).iter() {
                if idx.insert(pos, t.clone()).is_err() {
                    return Err(i);
                }
            }
        }
        Ok(idx)
    }

    /// Inserts a tuple into member `pos`'s relation. Re-inserting an
    /// existing tuple is a no-op.
    ///
    /// # Errors
    ///
    /// Fails when the tuple collides with a *different* existing tuple
    /// under one of the member's keys (local key violation).
    #[allow(clippy::result_unit_err)]
    pub fn insert(&mut self, pos: usize, t: Tuple) -> Result<(), ()> {
        let id = self.tuples.len() as u32;
        let keys = self.members[pos].2.clone();
        for (kpos, k) in keys.iter().enumerate() {
            let vals = key_values(*k, &t).expect("tuple total on its scheme");
            if let Some(&existing) = self.index.get(&(pos as u32, kpos as u32, vals)) {
                if self.tuples[existing as usize] != t {
                    return Err(());
                }
            }
        }
        for (kpos, k) in keys.iter().enumerate() {
            let vals = key_values(*k, &t).expect("tuple total on its scheme");
            self.index.insert((pos as u32, kpos as u32, vals), id);
        }
        self.tuples.push(t);
        Ok(())
    }

    /// Member position of a database-scheme index.
    pub fn member_pos(&self, scheme_idx: usize) -> Option<usize> {
        self.members.iter().position(|&(i, _, _)| i == scheme_idx)
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    fn lookup(&self, pos: usize, kpos: usize, probe: &Tuple) -> Option<&Tuple> {
        let k = self.members[pos].2[kpos];
        let vals = key_values(k, probe)?;
        self.index
            .get(&(pos as u32, kpos as u32, vals))
            .map(|&id| &self.tuples[id as usize])
    }
}

impl StateAccess for StateIndex {
    fn members(&self) -> &[(usize, AttrSet, Vec<AttrSet>)] {
        &self.members
    }

    fn select(
        &self,
        pos: usize,
        kpos: usize,
        probe: &Tuple,
    ) -> Result<Option<Tuple>, crate::exec::Fault> {
        Ok(self.lookup(pos, kpos, probe).cloned())
    }
}

fn key_values(k: AttrSet, t: &Tuple) -> Option<Box<[Value]>> {
    let mut vals = Vec::with_capacity(k.len());
    for a in k.iter() {
        vals.push(t.get(a)?);
    }
    Some(vals.into_boxed_slice())
}

/// One single-tuple conjunctive selection issued by Algorithm 4 — the
/// `σ_Φ(π_X(Rᵢ))` objects of the ctm definition (§2.7). A trace of these
/// lets tests verify the *definedness* condition: every constant in a
/// selection formula was either in the inserted tuple or returned by an
/// earlier selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectionStep {
    /// The member scheme selected from (database-scheme index).
    pub scheme: usize,
    /// The key whose equality formula `Φ` constrains.
    pub key: AttrSet,
    /// The constants of `Φ`, in key-attribute order.
    pub values: Vec<Value>,
    /// The retrieved tuple, if the selection was nonempty.
    pub result: Option<Tuple>,
}

/// Algorithm 4 with a full selection trace (see [`SelectionStep`]).
/// Diagnostic-only: runs unmetered against the concrete in-memory index.
pub fn algorithm4_traced(
    idx: &StateIndex,
    t_on_k: &Tuple,
    stats: &mut MaintenanceStats,
    trace: &mut Vec<SelectionStep>,
) -> Option<Tuple> {
    let mut t = t_on_k.clone();
    let mut c = t.attrs();
    loop {
        let mut extended = false;
        for pos in 0..idx.members.len() {
            let (scheme_idx, attrs, ref keys) = idx.members[pos];
            if attrs.is_subset(c) {
                continue;
            }
            for (kpos, k) in keys.iter().enumerate() {
                if !k.is_subset(c) {
                    continue;
                }
                stats.lookups += 1;
                let hit = idx.lookup(pos, kpos, &t).cloned();
                trace.push(SelectionStep {
                    scheme: scheme_idx,
                    key: *k,
                    values: k.iter().map(|a| t.value(a)).collect(),
                    result: hit.clone(),
                });
                if let Some(p) = hit {
                    t = t.join(&p)?;
                    c = t.attrs();
                    extended = true;
                    break;
                }
            }
            if extended {
                break;
            }
        }
        if !extended {
            return Some(t);
        }
    }
}

/// Algorithm 5 with a full selection trace. Diagnostic-only: runs
/// unmetered against the concrete in-memory index.
pub fn algorithm5_traced(
    scheme: &DatabaseScheme,
    idx: &StateIndex,
    si: usize,
    t: &Tuple,
) -> (MaintenanceOutcome, MaintenanceStats, Vec<SelectionStep>) {
    let mut stats = MaintenanceStats::default();
    let mut trace = Vec::new();
    let mut q = t.clone();
    for &k in scheme.scheme(si).keys() {
        stats.keys_processed += 1;
        let probe = t.project(k);
        let Some(extended) = algorithm4_traced(idx, &probe, &mut stats, &mut trace) else {
            return (MaintenanceOutcome::Inconsistent, stats, trace);
        };
        match q.join(&extended) {
            Some(joined) => q = joined,
            None => return (MaintenanceOutcome::Inconsistent, stats, trace),
        }
    }
    (MaintenanceOutcome::Consistent(q), stats, trace)
}

/// Algorithm 4: extends a tuple on a key `K` as far as the state allows —
/// while some member scheme `Sᵢ` has a key `Kᵢ ⊆ C` with `Sᵢ − C ≠ ∅` and
/// a matching tuple `p` (`p[Kᵢ] = t'[Kᵢ]`), absorb `p`. Generic over the
/// state access path.
///
/// Returns the extended tuple (Lemma 3.3: on a consistent state of a
/// split-free key-equivalent scheme this is the unique total tuple of the
/// representative instance containing the key value). `Ok(None)` is the
/// conflict verdict (the supposedly consistent state produced an empty
/// join); `Err` means the guard or a fault stopped the extension before a
/// verdict.
pub fn algorithm4(
    idx: &impl StateAccess,
    t_on_k: &Tuple,
    stats: &mut MaintenanceStats,
    guard: &Guard,
    retry: &RetryPolicy,
) -> Result<Option<Tuple>, ExecError> {
    let mut t = t_on_k.clone();
    let mut c = t.attrs();
    loop {
        let mut extended = false;
        let members = idx.members();
        for (pos, &(_, attrs, ref keys)) in members.iter().enumerate() {
            if attrs.is_subset(c) {
                continue;
            }
            for (kpos, k) in keys.iter().enumerate() {
                if !k.is_subset(c) {
                    continue;
                }
                stats.lookups += 1;
                guard.lookup()?;
                if let Some(p) = retry.run(guard, || idx.select(pos, kpos, &t))? {
                    match t.join(&p) {
                        Some(joined) => t = joined,
                        None => return Ok(None),
                    }
                    c = t.attrs();
                    extended = true;
                    break;
                }
            }
            if extended {
                break;
            }
        }
        if !extended {
            return Ok(Some(t));
        }
    }
}

/// Algorithm 5: constant-time maintenance for a *split-free*
/// key-equivalent block, generic over the state access path. For each key
/// of the updated scheme, extend the inserted tuple's key value through
/// the state (Algorithm 4) and join the results with the inserted tuple;
/// an empty join rejects (Lemma 3.4).
///
/// See [`algorithm2`] for the budget/retry contract.
pub fn algorithm5(
    scheme: &DatabaseScheme,
    idx: &impl StateAccess,
    si: usize,
    t: &Tuple,
    guard: &Guard,
    retry: &RetryPolicy,
) -> Result<(MaintenanceOutcome, MaintenanceStats), ExecError> {
    let mut stats = MaintenanceStats::default();
    let mut q = t.clone();
    for &k in scheme.scheme(si).keys() {
        stats.keys_processed += 1;
        let probe = t.project(k);
        let Some(extended) = algorithm4(idx, &probe, &mut stats, guard, retry)? else {
            return Ok((MaintenanceOutcome::Inconsistent, stats));
        };
        match q.join(&extended) {
            Some(joined) => q = joined,
            None => return Ok((MaintenanceOutcome::Inconsistent, stats)),
        }
    }
    Ok((MaintenanceOutcome::Consistent(q), stats))
}

/// Incremental maintainer for an independence-reducible scheme (§4.2):
/// one representative instance per block, maintained by Algorithm 2.
///
/// Satisfaction within each block guarantees global consistency (the
/// independence of the induced scheme `D`), so inserts touch exactly one
/// block.
#[derive(Clone, Debug)]
pub struct IrMaintainer {
    scheme: DatabaseScheme,
    ir: IrScheme,
    reps: Vec<KeRep>,
    trace: TraceHandle,
}

impl IrMaintainer {
    /// Builds the maintainer from an initial state, verifying its
    /// consistency block by block (the construction of §4.1). Block
    /// construction charges the guard (one lookup per key-index probe of
    /// Algorithm 1's merge loop).
    ///
    /// # Errors
    ///
    /// An inconsistent block surfaces as [`ExecError::Inconsistent`]
    /// naming the block; guard trips surface as their own variants.
    pub fn new(
        scheme: &DatabaseScheme,
        ir: &IrScheme,
        state: &DatabaseState,
        guard: &Guard,
    ) -> Result<Self, ExecError> {
        let mut reps = Vec::with_capacity(ir.len());
        for (b, block) in ir.partition.iter().enumerate() {
            let keys = &ir.block_keys[b];
            let tuples = block
                .iter()
                .flat_map(|&i| state.relation(i).iter().cloned());
            match KeRep::build(keys, tuples, guard) {
                Ok(rep) => reps.push(rep),
                Err(ExecError::Inconsistent { detail }) => {
                    return Err(ExecError::Inconsistent {
                        detail: format!("block {b}: {detail}"),
                    })
                }
                Err(e) => return Err(e),
            }
        }
        Ok(IrMaintainer {
            scheme: scheme.clone(),
            ir: ir.clone(),
            reps,
            trace: TraceHandle::none(),
        })
    }

    /// Installs a tracer: every subsequent [`insert`](IrMaintainer::insert)
    /// emits an [`TraceEvent::InsertApplied`] with its verdict.
    #[must_use]
    pub fn with_tracer(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The per-block representative instances.
    pub fn reps(&self) -> &[KeRep] {
        &self.reps
    }

    /// The block structure the maintainer routes on.
    pub fn ir(&self) -> &IrScheme {
        &self.ir
    }

    /// Checks an insertion into relation `scheme_idx` and, when consistent,
    /// applies it (updating the block's representative instance).
    ///
    /// Algorithm 2's selections are metered against `guard` and its faults
    /// run through `retry`. When the guard trips or a fault persists, the
    /// maintainer state is left unchanged — the decision phase failed,
    /// nothing was applied. The apply phase (merging the accepted tuple
    /// into the block rep) runs unmetered on purpose: interrupting it
    /// mid-merge would leave the rep half-updated, and its cost is bounded
    /// by the work Algorithm 2 already paid for.
    pub fn insert(
        &mut self,
        scheme_idx: usize,
        t: Tuple,
        guard: &Guard,
        retry: &RetryPolicy,
    ) -> Result<(MaintenanceOutcome, MaintenanceStats), ExecError> {
        let b = self.ir.block_of[scheme_idx];
        let (outcome, stats) =
            algorithm2(&self.scheme, &self.reps[b], scheme_idx, &t, guard, retry)?;
        if let MaintenanceOutcome::Consistent(ref q) = outcome {
            self.reps[b]
                .insert_merge(q.clone(), &Guard::unlimited())
                .expect("Algorithm 2 accepted; merge cannot conflict");
        }
        self.trace.emit_with(|| TraceEvent::InsertApplied {
            relation: Arc::from(self.scheme.scheme(scheme_idx).name()),
            accepted: outcome.is_consistent(),
        });
        Ok((outcome, stats))
    }

    /// Answers an X-total projection directly from the maintained
    /// representative instances — the query path of a *live* system, where
    /// Theorem 4.1's `[Yⱼ]` relations are already materialised as the
    /// per-block rep tuples (no base-table joins at all).
    ///
    /// For each minimal lossless cover `V` of blocks (as in
    /// [`crate::query::ir_total_projection_expr`]) the `Yⱼ`-total tuples
    /// are read straight out of block `j`'s rep and joined. Returns the
    /// deduplicated result tuples on `x`.
    ///
    /// The lossless-cover enumeration is charged against the guard's
    /// enumeration budget and the join loops honour its deadline and
    /// cancellation, so a query over an adversarial block structure fails
    /// typed instead of running away.
    pub fn total_projection(
        &self,
        kd: &idr_fd::KeyDeps,
        x: idr_relation::AttrSet,
        guard: &Guard,
    ) -> Result<Vec<Tuple>, ExecError> {
        let _ = kd; // block structure suffices; kept for API symmetry
        let block_fds = (0..self.ir.len())
            .map(|b| crate::recognition::block_key_fds(&self.ir, b))
            .fold(idr_fd::FdSet::new(), |acc, f| acc.union(&f));
        let covers =
            crate::query::minimal_lossless_covers(&self.ir.block_attrs, &block_fds, x, guard)?;
        let mut out: Vec<Tuple> = Vec::new();
        for v in &covers {
            guard.checkpoint()?;
            out.extend(self.join_cover(v, x));
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Joins the `[Yⱼ]`-total rep tuples of one lossless block cover `v`
    /// (Theorem 4.1) and projects onto `x`.
    fn join_cover(&self, v: &[usize], x: idr_relation::AttrSet) -> Vec<Tuple> {
        // Yⱼ per Theorem 4.1.
        let ys: Vec<idr_relation::AttrSet> = v
            .iter()
            .enumerate()
            .map(|(pos, &b)| {
                let mut others = x;
                for (pos2, &b2) in v.iter().enumerate() {
                    if pos2 != pos {
                        others |= self.ir.block_attrs[b2];
                    }
                }
                self.ir.block_attrs[b] & others
            })
            .collect();
        if ys.iter().any(|y| y.is_empty()) {
            return Vec::new();
        }
        // [Yⱼ]-total tuples straight from the reps.
        let mut partials: Vec<Vec<Tuple>> = Vec::with_capacity(v.len());
        for (pos, &b) in v.iter().enumerate() {
            let y = ys[pos];
            let mut tuples: Vec<Tuple> = self.reps[b]
                .iter()
                .filter(|t| y.is_subset(t.attrs()))
                .map(|t| t.project(y))
                .collect();
            tuples.sort();
            tuples.dedup();
            partials.push(tuples);
        }
        // Hash-join the per-block partials on their common attributes
        // (all tuples within one side share an attribute set).
        let mut acc: Vec<Tuple> = vec![Tuple::unit()];
        let mut acc_attrs = idr_relation::AttrSet::empty();
        for (pos, side) in partials.iter().enumerate() {
            let side_attrs = ys[pos];
            let common = acc_attrs & side_attrs;
            let mut index: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
            for bt in side {
                index.entry(bt.project(common)).or_default().push(bt);
            }
            let mut next = Vec::new();
            for a in &acc {
                if let Some(matches) = index.get(&a.project(common)) {
                    for bt in matches {
                        if let Some(j) = a.join(bt) {
                            next.push(j);
                        }
                    }
                }
            }
            acc = next;
            acc_attrs |= side_attrs;
            if acc.is_empty() {
                break;
            }
        }
        acc.into_iter().map(|t| t.project(x)).collect()
    }

    /// Deletes a tuple from relation `scheme_idx`, rebuilding the touched
    /// block's representative instance from the given (already-updated)
    /// state.
    ///
    /// Deletion never breaks consistency (consistency is monotone under
    /// tuple removal), but it can *unmerge* representative-instance
    /// tuples, so the block representation cannot be patched in place; the
    /// affected block is rebuilt, with the rebuild's key-index probes
    /// charged against `guard`. The paper only treats insertions; this is
    /// the natural completion for a usable maintainer.
    pub fn delete(
        &mut self,
        scheme_idx: usize,
        updated_state: &DatabaseState,
        guard: &Guard,
    ) -> Result<(), ExecError> {
        let b = self.ir.block_of[scheme_idx];
        let keys = &self.ir.block_keys[b];
        let tuples = self.ir.partition[b]
            .iter()
            .flat_map(|&i| updated_state.relation(i).iter().cloned());
        self.reps[b] = KeRep::build(keys, tuples, guard)?;
        Ok(())
    }

    /// Whether a whole state is consistent for an independence-reducible
    /// scheme: every block substate consistent wrt its embedded key
    /// dependencies (§4.2). An inconsistent block yields `Ok(false)`;
    /// guard trips surface as errors.
    pub fn state_consistent(
        scheme: &DatabaseScheme,
        ir: &IrScheme,
        state: &DatabaseState,
        guard: &Guard,
    ) -> Result<bool, ExecError> {
        match Self::new(scheme, ir, state, guard) {
            Ok(_) => Ok(true),
            Err(ExecError::Inconsistent { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// Constant-time maintainer for a *split-free* independence-reducible
/// scheme: one [`StateIndex`] per block, driven by Algorithm 5. Unlike
/// [`IrMaintainer`] it never materialises a representative instance —
/// exactly the point of constant-time maintainability.
#[derive(Clone, Debug)]
pub struct CtmMaintainer {
    scheme: DatabaseScheme,
    ir: IrScheme,
    indexes: Vec<StateIndex>,
    trace: TraceHandle,
}

impl CtmMaintainer {
    /// Builds the per-block indexes over an initial state assumed
    /// consistent (the maintenance problem's precondition).
    ///
    /// # Errors
    ///
    /// A locally inconsistent relation surfaces as
    /// [`ExecError::Inconsistent`] naming it; the guard's deadline and
    /// cancellation are honoured between blocks.
    pub fn new(
        scheme: &DatabaseScheme,
        ir: &IrScheme,
        state: &DatabaseState,
        guard: &Guard,
    ) -> Result<Self, ExecError> {
        let mut indexes = Vec::with_capacity(ir.len());
        for block in ir.partition.iter() {
            guard.checkpoint()?;
            match StateIndex::build(scheme, block, state) {
                Ok(idx) => indexes.push(idx),
                Err(i) => {
                    return Err(ExecError::Inconsistent {
                        detail: format!(
                            "relation {i} violates one of its own key dependencies"
                        ),
                    })
                }
            }
        }
        Ok(CtmMaintainer {
            scheme: scheme.clone(),
            ir: ir.clone(),
            indexes,
            trace: TraceHandle::none(),
        })
    }

    /// Installs a tracer: every subsequent [`insert`](CtmMaintainer::insert)
    /// emits one [`TraceEvent::SelectionPerformed`] per single-tuple
    /// selection Algorithm 5 issued (replayed through
    /// [`algorithm5_traced`], which is deterministic and agrees with the
    /// metered run) and a closing [`TraceEvent::InsertApplied`].
    #[must_use]
    pub fn with_tracer(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Checks an insertion and, when consistent, applies it. Algorithm 5's
    /// selections are metered against `guard` and its faults run through
    /// `retry`; same decide-metered/apply-atomic contract as
    /// [`IrMaintainer::insert`].
    pub fn insert(
        &mut self,
        scheme_idx: usize,
        t: Tuple,
        guard: &Guard,
        retry: &RetryPolicy,
    ) -> Result<(MaintenanceOutcome, MaintenanceStats), ExecError> {
        let b = self.ir.block_of[scheme_idx];
        let (outcome, stats) =
            algorithm5(&self.scheme, &self.indexes[b], scheme_idx, &t, guard, retry)?;
        if self.trace.enabled() {
            // Replay the decision unmetered purely for the selection
            // trace: Algorithm 5 is deterministic, so the replay issues
            // exactly the selections the metered run just paid for.
            let (_, _, steps) = algorithm5_traced(&self.scheme, &self.indexes[b], scheme_idx, &t);
            for step in &steps {
                self.trace.emit_with(|| TraceEvent::SelectionPerformed {
                    relation: Arc::from(self.scheme.scheme(step.scheme).name()),
                    found: step.result.is_some(),
                });
            }
            self.trace.emit_with(|| TraceEvent::InsertApplied {
                relation: Arc::from(self.scheme.scheme(scheme_idx).name()),
                accepted: outcome.is_consistent(),
            });
        }
        if outcome.is_consistent() {
            let pos = self.indexes[b]
                .member_pos(scheme_idx)
                .expect("scheme belongs to its block");
            self.indexes[b]
                .insert(pos, t)
                .expect("Algorithm 5 accepted; local keys cannot collide");
        }
        Ok((outcome, stats))
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognition::recognize;
    use idr_fd::KeyDeps;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    fn ok() -> (Guard, RetryPolicy) {
        (Guard::unlimited(), RetryPolicy::none())
    }

    /// Example 6: R = {R1(ABE), R2(AC), R3(AD), R4(BC), R5(BD), R6(CDE)},
    /// keys {A, B, E} for R1, singletons elsewhere, CD↔E.
    fn example6() -> DatabaseScheme {
        SchemeBuilder::new("ABCDE")
            .scheme("R1", "ABE", ["A", "B", "E"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AD", ["A"])
            .scheme("R4", "BC", ["B"])
            .scheme("R5", "BD", ["B"])
            .scheme("R6", "CDE", ["CD", "E"])
            .build()
            .unwrap()
    }

    #[test]
    fn example6_algorithm2_rejects() {
        // State: r2 = {<a,c>}, r5 = {<b,d>}, r6 = {<c,d,e>}; inserting
        // <a,b,e'> into r1 is inconsistent (the paper's trace rejects at
        // key CD).
        let db = example6();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert_eq!(ir.len(), 1, "Example 6 is key-equivalent");
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R2", &[("A", "a"), ("C", "c")]),
                ("R5", &[("B", "b"), ("D", "d")]),
                ("R6", &[("C", "c"), ("D", "d"), ("E", "e")]),
            ],
        )
        .unwrap();
        let (g, rp) = ok();
        let mut m = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
        let u = db.universe();
        let bad = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("B"), sym.intern("b")),
            (u.attr_of("E"), sym.intern("e'")),
        ]);
        let (outcome, _) = m.insert(0, bad.clone(), &g, &rp).unwrap();
        assert_eq!(outcome, MaintenanceOutcome::Inconsistent);

        // The chase agrees.
        let mut updated = state.clone();
        updated.insert(0, bad).unwrap();
        assert!(!idr_chase::is_consistent(&db, &updated, kd.full(), &g).unwrap());
    }

    #[test]
    fn example6_algorithm2_accepts_consistent_insert() {
        let db = example6();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R2", &[("A", "a"), ("C", "c")]),
                ("R5", &[("B", "b"), ("D", "d")]),
                ("R6", &[("C", "c"), ("D", "d"), ("E", "e")]),
            ],
        )
        .unwrap();
        let (g, rp) = ok();
        let mut m = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
        let u = db.universe();
        let good = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("B"), sym.intern("b")),
            (u.attr_of("E"), sym.intern("e")),
        ]);
        let (outcome, _) = m.insert(0, good.clone(), &g, &rp).unwrap();
        match outcome {
            MaintenanceOutcome::Consistent(q) => {
                // q joins all four tuples: total on ABCDE.
                assert_eq!(q.attrs(), u.set_of("ABCDE"));
            }
            MaintenanceOutcome::Inconsistent => panic!("must accept"),
        }
        // Chase agrees.
        let mut updated = state.clone();
        updated.insert(0, good).unwrap();
        assert!(idr_chase::is_consistent(&db, &updated, kd.full(), &g).unwrap());
    }

    /// Example 10: S = {S1(AB), S2(BC), S3(AC)}, all singleton keys;
    /// split-free, so Algorithm 5 applies.
    #[test]
    fn example10_algorithm5_rejects() {
        let db = SchemeBuilder::new("ABC")
            .scheme("S1", "AB", ["A", "B"])
            .scheme("S2", "BC", ["B", "C"])
            .scheme("S3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("S1", &[("A", "a"), ("B", "b")]),
                ("S2", &[("B", "b"), ("C", "c")]),
            ],
        )
        .unwrap();
        let (g, rp) = ok();
        let mut m = CtmMaintainer::new(&db, &ir, &state, &g).unwrap();
        let u = db.universe();
        // Insert <a, c'> into s3: Algorithm 4 extends a ↦ <a,b,c>, and
        // <a,c'> ⋈ <a,b,c> = ∅ → no.
        let bad = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("C"), sym.intern("c'")),
        ]);
        let (outcome, stats) = m.insert(2, bad.clone(), &g, &rp).unwrap();
        assert_eq!(outcome, MaintenanceOutcome::Inconsistent);
        assert!(stats.lookups > 0);
        // Chase agrees.
        let mut updated = state.clone();
        updated.insert(2, bad).unwrap();
        assert!(!idr_chase::is_consistent(&db, &updated, kd.full(), &g).unwrap());
    }

    #[test]
    fn algorithm5_accepts_and_later_lookups_see_insert() {
        let db = SchemeBuilder::new("ABC")
            .scheme("S1", "AB", ["A", "B"])
            .scheme("S2", "BC", ["B", "C"])
            .scheme("S3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(&db, &mut sym, &[("S1", &[("A", "a"), ("B", "b")])]).unwrap();
        let (g, rp) = ok();
        let mut m = CtmMaintainer::new(&db, &ir, &state, &g).unwrap();
        let u = db.universe();
        let t1 = Tuple::from_pairs([
            (u.attr_of("B"), sym.intern("b")),
            (u.attr_of("C"), sym.intern("c")),
        ]);
        assert!(m.insert(1, t1, &g, &rp).unwrap().0.is_consistent());
        // Now <a, c'> must be rejected (through the fresh S2 tuple).
        let bad = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("C"), sym.intern("c'")),
        ]);
        assert_eq!(
            m.insert(2, bad, &g, &rp).unwrap().0,
            MaintenanceOutcome::Inconsistent
        );
        // And the matching <a, c> accepted.
        let good = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("C"), sym.intern("c")),
        ]);
        assert!(m.insert(2, good, &g, &rp).unwrap().0.is_consistent());
    }

    #[test]
    fn delete_rebuilds_block_rep() {
        let db = SchemeBuilder::new("ABC")
            .scheme("S1", "AB", ["A", "B"])
            .scheme("S2", "BC", ["B", "C"])
            .scheme("S3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("S1", &[("A", "a"), ("B", "b")]),
                ("S2", &[("B", "b"), ("C", "c")]),
            ],
        )
        .unwrap();
        let (g, rp) = ok();
        let mut m = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
        // The two tuples merged to <a, b, c>.
        assert_eq!(m.reps()[0].len(), 1);
        // Delete the S2 tuple: rebuild from a state holding only S1's.
        let reduced = state_of(&db, &mut sym, &[("S1", &[("A", "a"), ("B", "b")])]).unwrap();
        m.delete(1, &reduced, &g).unwrap();
        assert_eq!(m.reps()[0].len(), 1);
        let t = m.reps()[0].iter().next().unwrap();
        assert_eq!(t.attrs(), db.universe().set_of("AB"));
        // A previously inconsistent insert is now acceptable: <a, c'> no
        // longer conflicts once B↛C.
        let u = db.universe();
        let t2 = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("C"), sym.intern("c'")),
        ]);
        assert!(m.insert(2, t2, &g, &rp).unwrap().0.is_consistent());
    }

    #[test]
    fn state_index_detects_local_violation() {
        let db = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        assert!(matches!(StateIndex::build(&db, &[0], &state), Err(0)));
    }

    #[test]
    fn inconsistent_base_state_names_the_block() {
        let db = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        let (g, _) = ok();
        match IrMaintainer::new(&db, &ir, &state, &g) {
            Err(ExecError::Inconsistent { detail }) => {
                assert!(detail.contains("block 0"), "detail: {detail}");
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
        assert!(!IrMaintainer::state_consistent(&db, &ir, &state, &g).unwrap());
    }

    #[test]
    fn ir_maintainer_routes_to_blocks() {
        // Example 11: inserts into block 2 never touch block 1's rep.
        let db = SchemeBuilder::new("ABCDEFG")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .scheme("R4", "AD", ["A"])
            .scheme("R5", "DEF", ["D"])
            .scheme("R6", "DEG", ["D"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let (g, rp) = ok();
        let mut m = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
        let u = db.universe();
        let t = Tuple::from_pairs([
            (u.attr_of("D"), sym.intern("d")),
            (u.attr_of("E"), sym.intern("e")),
            (u.attr_of("F"), sym.intern("f")),
        ]);
        assert!(m.insert(4, t, &g, &rp).unwrap().0.is_consistent());
        assert_eq!(m.reps()[0].len(), 1);
        assert_eq!(m.reps()[1].len(), 1);
    }

}
