//! The unified engine facade: build once from a scheme, query cheaply.
//!
//! [`Engine`] front-loads everything that depends only on the *scheme* —
//! key dependencies, Algorithm 6 recognition, the full classification,
//! and (lazily, cached) the Theorem 4.1 chase-free projection
//! expressions. A [`Session`] then binds the engine to one database
//! *state*: it chases the state once at construction and afterwards
//! answers [`is_consistent`](Session::is_consistent) in O(1) and serves
//! inserts through the [`IncrementalChase`] worklist path, so a stream of
//! updates never re-chases from scratch.
//!
//! For independence-reducible schemes the session exploits Theorems 4.1
//! and 4.2: each block of the IR partition is chased *separately* (the
//! blocks are independent, so per-block consistency is global
//! consistency), and when the engine is built with
//! [`parallel`](Engine::with_parallel) enabled the per-block chases run
//! on scoped threads. Budgets stay global: every worker charges the same
//! shared [`Guard`], whose counters are atomic. Results are written into
//! per-block slots, so parallel evaluation is *deterministic* — the same
//! inputs produce the same verdicts, stats and (block-ordered) first
//! error as a serial run.
//!
//! Total projections on IR schemes are answered chase-free through the
//! cached Theorem 4.1 expressions evaluated over the base state; non-IR
//! schemes fall back to a single whole-state chase.
//!
//! Mutations can be made durable by attaching a write-ahead sink
//! (owned by the hub via [`Engine::hub_with`], or borrowed by the legacy
//! [`Session::with_durability`]): every op then commits to the log
//! before touching memory.
//!
//! Since 0.7 the serving surface is the [`Hub`] with its split
//! [`ReadView`](crate::ReadView) / [`WriteHandle`](crate::WriteHandle)
//! API (`crate::serving`); [`Session`] remains as a single-threaded
//! compatibility shim over one hub.
//!
//! # Examples
//!
//! Build an engine once, bind it to a state, and serve consistency
//! checks, incremental updates and chase-free projections:
//!
//! ```
//! use idr_core::Engine;
//! use idr_relation::exec::Guard;
//! use idr_relation::{parse, SymbolTable};
//!
//! // Two independent blocks — independence-reducible by Algorithm 6.
//! let db = parse::parse_scheme(
//!     "universe: A B C D\n\
//!      scheme R1: A B keys A\n\
//!      scheme R2: C D keys C\n",
//! )
//! .unwrap();
//! let mut sym = SymbolTable::new();
//! let state = parse::parse_state("R1: A=a B=b\n", &db, &mut sym).unwrap();
//!
//! let engine = Engine::new(db);
//! assert!(engine.is_independence_reducible());
//!
//! let guard = Guard::unlimited();
//! let hub = engine.hub(&state, &guard).unwrap();
//! let writer = hub.write_handle();
//! assert!(hub.read_view().is_consistent());
//!
//! // Incremental insert: only the touched block re-chases.
//! let (rel, t) = parse::parse_tuple_line("R2: C=c D=d", engine.scheme(), &mut sym).unwrap();
//! assert!(writer.insert(rel, t, &guard).unwrap());
//!
//! // A key violation is rejected as a verdict, not an error.
//! let (rel, bad) = parse::parse_tuple_line("R1: A=a B=b2", engine.scheme(), &mut sym).unwrap();
//! assert!(!writer.insert(rel, bad, &guard).unwrap());
//!
//! // Chase-free X-total projection via the Theorem 4.1 expression,
//! // answered against an epoch-stamped snapshot.
//! let view = hub.read_view();
//! assert!(view.is_consistent());
//! let x = engine.scheme().universe().set_of("AB");
//! let answer = view.total_projection(x, &guard).unwrap().unwrap();
//! assert_eq!(answer.len(), 1);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use idr_chase::{IncrementalChase, RejectionExplanation, TupleExplanation};
use idr_fd::KeyDeps;
use idr_obs::{MetricsRegistry, TraceEvent, TraceHandle};
use idr_relation::algebra::Expr;
use idr_relation::exec::{ExecError, Guard};
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, Tuple};

use crate::classify::{classify, Classification};
use crate::durability::{Durability, DurabilitySink, DurableOp};
use crate::kep;
use crate::query::ir_total_projection_expr;
use crate::recognition::{recognize, IrScheme, Recognition};
use crate::serving::Hub;

/// Events each per-block shard can hold during one hub build. The
/// ring discards oldest-first beyond this, counting drops — tracing
/// never aborts an evaluation.
pub(crate) const SHARD_CAPACITY: usize = 65_536;

/// Observability configuration for an [`Engine`]: a trace sink, a
/// metrics registry, and the provenance switch. All three default to
/// off, in which case every instrumentation site costs one branch.
#[derive(Clone, Debug, Default)]
pub struct Observability {
    /// Sink for structured [`TraceEvent`]s. Under block-parallel
    /// evaluation each block writes to a private shard; shards merge in
    /// block order at the join barrier, so serial and parallel runs
    /// deliver *identical* event sequences here.
    pub tracer: TraceHandle,
    /// Registry fed with engine counters (chase work, session
    /// operations, guard spend) and latency histograms.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// When set, block engines record the fd-firing merge forest, and
    /// [`Session::explain`] / [`Session::explain_rejection`] return full
    /// derivation chains.
    pub provenance: bool,
}

impl Observability {
    /// The all-off configuration (same as `Default`).
    pub fn none() -> Self {
        Observability::default()
    }
}

/// Scheme-level front end: owns everything derivable from the scheme
/// alone. Construction runs Algorithm 6 once; classification and the
/// Theorem 4.1 projection expressions are computed lazily and cached.
///
/// The engine is `Sync`: one engine can serve many sessions (and many
/// threads) concurrently.
#[derive(Debug)]
pub struct Engine {
    scheme: DatabaseScheme,
    kd: KeyDeps,
    recognition: Recognition,
    classification: OnceLock<Classification>,
    expr_cache: Mutex<HashMap<AttrSet, Option<Expr>>>,
    parallel: bool,
    obs: Observability,
}

impl Engine {
    /// Builds the engine: derives the key dependencies and runs
    /// Algorithm 6. Block-parallel evaluation is enabled by default;
    /// see [`with_parallel`](Engine::with_parallel).
    pub fn new(scheme: DatabaseScheme) -> Self {
        let kd = KeyDeps::of(&scheme);
        let recognition = recognize(&scheme, &kd);
        Engine {
            scheme,
            kd,
            recognition,
            classification: OnceLock::new(),
            expr_cache: Mutex::new(HashMap::new()),
            parallel: true,
            obs: Observability::default(),
        }
    }

    /// Enables or disables block-parallel evaluation. Serial and parallel
    /// runs produce identical results; parallel only changes wall-clock.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches an [`Observability`] configuration. When the tracer is
    /// enabled, the scheme-level verdicts already computed by
    /// [`Engine::new`] are emitted immediately (`recognition_done`, and
    /// `kep_computed` when Algorithm 6 accepted), so a trace always
    /// opens with the scheme's shape.
    pub fn with_observability(self, obs: Observability) -> Self {
        obs.tracer.emit_with(|| self.recognition.trace_event());
        if let Some(ir) = self.ir() {
            obs.tracer.emit_with(|| kep::trace_event(&ir.partition));
        }
        Engine { obs, ..self }
    }

    /// The engine's observability configuration.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Sets every `guard.*` gauge from one [`Guard::snapshot`], when a
    /// metrics registry is attached.
    pub fn record_guard_metrics(&self, guard: &Guard) {
        if let Some(m) = &self.obs.metrics {
            let s = guard.snapshot();
            m.gauge("guard.chase_steps").set(s.chase_steps);
            m.gauge("guard.lookups").set(s.lookups);
            m.gauge("guard.enumeration").set(s.enumeration);
        }
    }

    /// The scheme the engine was built from.
    pub fn scheme(&self) -> &DatabaseScheme {
        &self.scheme
    }

    /// The embedded key dependencies.
    pub fn key_deps(&self) -> &KeyDeps {
        &self.kd
    }

    /// Algorithm 6's verdict.
    pub fn recognition(&self) -> &Recognition {
        &self.recognition
    }

    /// The IR partition, when Algorithm 6 accepted.
    pub fn ir(&self) -> Option<&IrScheme> {
        match &self.recognition {
            Recognition::Accepted(ir) => Some(ir),
            Recognition::Rejected(_) => None,
        }
    }

    /// Whether the scheme is independence-reducible.
    pub fn is_independence_reducible(&self) -> bool {
        self.recognition.is_accepted()
    }

    /// The full classification (BCNF, γ-acyclicity, ctm, …), computed on
    /// first use and cached.
    pub fn classification(&self) -> &Classification {
        self.classification.get_or_init(|| classify(&self.scheme))
    }

    /// The Theorem 4.1 chase-free expression for the X-total projection
    /// `[x]`, cached per `x`. `Ok(None)` when the scheme is not
    /// independence-reducible (no such expression exists in general) or
    /// when no bounded expression covers `x`.
    pub fn total_projection_expr(&self, x: AttrSet, guard: &Guard) -> Result<Option<Expr>, ExecError> {
        let Some(ir) = self.ir() else {
            return Ok(None);
        };
        if let Some(e) = self.expr_cache_guard()?.get(&x) {
            return Ok(e.clone());
        }
        let expr = ir_total_projection_expr(&self.scheme, &self.kd, ir, x, guard)?;
        self.expr_cache_guard()?.insert(x, expr.clone());
        Ok(expr)
    }

    /// Locks the expression cache, recovering from poison. A thread that
    /// panicked while holding the lock may have left a half-written map
    /// behind; the cache is only an optimisation, so recovery discards it,
    /// clears the poison (later queries recompute and succeed), and
    /// surfaces the panic *once* as a typed [`ExecError::Faulted`] instead
    /// of cascading panics on every subsequent query.
    fn expr_cache_guard(
        &self,
    ) -> Result<std::sync::MutexGuard<'_, HashMap<AttrSet, Option<Expr>>>, ExecError> {
        match self.expr_cache.lock() {
            Ok(g) => Ok(g),
            Err(poisoned) => {
                poisoned.into_inner().clear();
                self.expr_cache.clear_poison();
                Err(ExecError::Faulted {
                    kind: idr_relation::exec::FaultKind::Permanent,
                    operation: "expression cache poisoned by a panicked evaluation thread \
                                (cache cleared; the next query recomputes)"
                        .to_string(),
                    attempts: 1,
                })
            }
        }
    }

    /// Test hook: poisons the expression cache the way a panicking
    /// evaluation thread would (a thread panics while holding the lock).
    /// Used by the poison-recovery regression tests and the fuzzing
    /// oracle's fault schedule.
    #[doc(hidden)]
    pub fn inject_expr_cache_panic(&self) {
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = self.expr_cache.lock().unwrap_or_else(|p| p.into_inner());
                // resume_unwind poisons exactly like panic! but skips the
                // panic hook, so injection runs don't spam backtraces.
                std::panic::resume_unwind(Box::new("injected expr-cache panic"));
            })
            .join()
        });
        assert!(result.is_err(), "injected panic must propagate to join");
    }

    /// One-shot consistency check: builds a throwaway [`Hub`] (block
    /// chases, parallel when enabled) and reports its verdict. For a
    /// stream of checks against an evolving state, keep the hub.
    pub fn is_consistent(&self, state: &DatabaseState, guard: &Guard) -> Result<bool, ExecError> {
        Ok(self.hub(state, guard)?.is_consistent())
    }

    /// One-shot X-total projection `[x]`. `Ok(None)` when the state is
    /// inconsistent.
    pub fn total_projection(
        &self,
        state: &DatabaseState,
        x: AttrSet,
        guard: &Guard,
    ) -> Result<Option<Vec<Tuple>>, ExecError> {
        self.hub(state, guard)?.query_live(state, x, guard)
    }

    /// Binds the engine to a state for concurrent service: chases every
    /// block (in parallel when enabled) and returns the [`Hub`] that
    /// hands out [`WriteHandle`](crate::WriteHandle)s and epoch-stamped
    /// [`ReadView`](crate::ReadView)s. An inconsistent state is *not* an
    /// error — the hub reports it through [`Hub::is_consistent`]. `Err`
    /// means the guard stopped a chase before a verdict.
    pub fn hub(&self, state: &DatabaseState, guard: &Guard) -> Result<Hub<'_>, ExecError> {
        Hub::build(self, state, guard, None)
    }

    /// Like [`hub`](Engine::hub), with an owned write-ahead durability
    /// sink (e.g. `idr_store::SharedStore`) shared by every
    /// [`WriteHandle`](crate::WriteHandle): mutations commit to the log
    /// before memory, concurrent writers' appends may group-commit into
    /// one fsync.
    pub fn hub_with(
        &self,
        state: &DatabaseState,
        guard: &Guard,
        sink: Arc<dyn DurabilitySink>,
    ) -> Result<Hub<'_>, ExecError> {
        Hub::build(self, state, guard, Some(sink))
    }

    /// Binds the engine to a state behind the pre-0.7 single-threaded
    /// [`Session`] facade. The session is now a thin shim over one
    /// [`Hub`]; new code should call [`hub`](Engine::hub) and use the
    /// split `ReadView`/`WriteHandle` API — see DESIGN.md §14 for the
    /// migration guide.
    #[deprecated(
        since = "0.7.0",
        note = "use Engine::hub and the split ReadView/WriteHandle API (DESIGN.md §14)"
    )]
    pub fn session(&self, state: &DatabaseState, guard: &Guard) -> Result<Session<'_>, ExecError> {
        Ok(Session {
            hub: Hub::build(self, state, guard, None)?,
            state: state.clone(),
            last_rejection: None,
            durability: None,
        })
    }

    /// Whether block-parallel evaluation is enabled.
    pub(crate) fn parallel_enabled(&self) -> bool {
        self.parallel
    }

    /// Chases block `b`'s substate under the block's fds, emitting its
    /// events (and a closing `block_evaluated`) into `trace` — under
    /// parallel evaluation that is the block's private shard.
    /// Inconsistency poisons the returned engine rather than erroring —
    /// the hub reports it as a verdict.
    pub(crate) fn chase_block(
        &self,
        ir: &IrScheme,
        b: usize,
        state: &DatabaseState,
        guard: &Guard,
        trace: TraceHandle,
    ) -> Result<IncrementalChase, ExecError> {
        let mut e = IncrementalChase::new(self.scheme.universe().len(), &ir.block_fds[b])
            .with_observability(
                trace.clone(),
                Some(self.scheme.universe()),
                &format!("T{}", b + 1),
            )
            .with_provenance(self.obs.provenance);
        for &i in &ir.partition[b] {
            for t in state.relation(i).iter() {
                e.push_tuple(t, Some(i))?;
            }
        }
        let e = finish_run(e, guard)?;
        trace.emit_with(|| TraceEvent::BlockEvaluated {
            block: b,
            consistent: e.failure().is_none(),
            passes: e.stats().passes,
            rule_applications: e.stats().rule_applications,
        });
        Ok(e)
    }

    pub(crate) fn chase_whole(
        &self,
        state: &DatabaseState,
        guard: &Guard,
    ) -> Result<IncrementalChase, ExecError> {
        let e = IncrementalChase::of_state(&self.scheme, state, self.kd.full())?
            .with_observability(self.obs.tracer.clone(), Some(self.scheme.universe()), "whole")
            .with_provenance(self.obs.provenance);
        let e = finish_run(e, guard)?;
        self.obs.tracer.emit_with(|| TraceEvent::BlockEvaluated {
            block: 0,
            consistent: e.failure().is_none(),
            passes: e.stats().passes,
            rule_applications: e.stats().rule_applications,
        });
        Ok(e)
    }
}

/// Runs the engine to fixpoint; an inconsistency is a verdict (the engine
/// stays poisoned), any other error propagates.
fn finish_run(mut e: IncrementalChase, guard: &Guard) -> Result<IncrementalChase, ExecError> {
    match e.run(guard) {
        Ok(_) | Err(ExecError::Inconsistent { .. }) => Ok(e),
        Err(err) => Err(err),
    }
}

/// An [`Engine`] bound to one database state — the pre-0.7
/// single-threaded facade, kept as a thin compatibility shim over one
/// [`Hub`]. Consistency is still O(blocks) and an insert still only
/// re-chases what the new tuple touches; the hub does the work, the
/// shim preserves the original `&mut self` surface, the borrowed
/// [`Durability`] sink, and the exact legacy event/metric order.
///
/// New code should use [`Engine::hub`] with the split
/// [`ReadView`](crate::ReadView) / [`WriteHandle`](crate::WriteHandle)
/// API; see DESIGN.md §14 for the migration guide.
#[derive(Debug)]
pub struct Session<'e> {
    hub: Hub<'e>,
    /// Mirror of the hub's base state, so [`state`](Session::state) can
    /// keep returning a borrow.
    state: DatabaseState,
    /// Provenance of the most recent rejected insert, captured *before*
    /// the poisoned block tableau is rebuilt (the rebuild discards the
    /// chase that found the violation).
    last_rejection: Option<RejectionExplanation>,
    /// Optional write-ahead durability sink: when attached, every
    /// mutation is logged *before* memory changes and aborted on
    /// rollback, so the log and memory always agree. (`+ 'static` keeps
    /// `Session<'e>` covariant in `'e`.)
    durability: Option<&'e mut (dyn Durability + 'static)>,
}

impl<'e> Session<'e> {
    /// Attaches a write-ahead [`Durability`] sink (e.g.
    /// `idr_store::Store`). From then on every [`insert`](Session::insert)
    /// / [`delete`](Session::delete) logs its intent record before
    /// mutating memory, appends an abort marker when a guard trip rolls
    /// the mutation back, and offers the post-op state to the sink for
    /// periodic snapshots. The sink must resolve the same interned
    /// [`idr_relation::Value`]s the session's tuples use — intern through
    /// the sink's own symbol table.
    pub fn with_durability(mut self, sink: &'e mut (dyn Durability + 'static)) -> Self {
        self.durability = Some(sink);
        self
    }
}

impl Session<'_> {
    /// The engine this session was created from.
    pub fn engine(&self) -> &Engine {
        self.hub.engine()
    }

    /// The current state (base relations, reflecting accepted inserts and
    /// deletes).
    pub fn state(&self) -> &DatabaseState {
        &self.state
    }

    /// Whether the current state is consistent — O(blocks), no chasing.
    pub fn is_consistent(&self) -> bool {
        self.hub.is_consistent()
    }

    /// Block indexes whose substate is inconsistent (always `[0]` or `[]`
    /// for the whole-state backend).
    pub fn inconsistent_blocks(&self) -> Vec<usize> {
        self.hub.inconsistent_blocks()
    }

    /// Inserts `t` into relation `i` if the result stays consistent.
    ///
    /// `Ok(true)`: accepted and applied (incrementally — only the rows the
    /// new tuple touches are re-chased). `Ok(false)`: rejected, the state
    /// is unchanged (the touched block's tableau is rebuilt from the
    /// untouched state; the rebuild replays a chase already known to
    /// succeed, so it is not charged). `Err(Inconsistent)`: the base
    /// state was already inconsistent — maintenance needs a consistent
    /// base. Other `Err`s are guard trips; the insert then did *not*
    /// happen — the speculative row is rolled back (the tableau is rebuilt
    /// from the unchanged base state), so queries keep answering from the
    /// pre-insert state and the caller may simply retry with a fresh
    /// guard.
    pub fn insert(&mut self, i: usize, t: Tuple, guard: &Guard) -> Result<bool, ExecError> {
        let t0 = Instant::now();
        if let Some(f) = self.hub.block_failure(i) {
            return Err(f);
        }
        // Write-ahead: commit the intent record before any memory changes.
        if let Some(d) = self.durability.as_mut() {
            d.log_op(DurableOp::Insert { rel: i, t: &t })?;
        }
        let outcome = match self.hub.insert_op(i, t.clone(), guard) {
            Ok((true, _)) => {
                self.state
                    .insert(i, t)
                    .expect("tuple was chased against scheme i, so it matches scheme i");
                Ok(true)
            }
            Ok((false, why)) => {
                self.last_rejection = why;
                Ok(false)
            }
            Err(e) => {
                // The hub already rolled the op back (the tableau is
                // rebuilt from the unchanged base state); mark the logged
                // record aborted so recovery skips it and the log agrees
                // with memory again.
                if let Some(d) = self.durability.as_mut() {
                    d.log_abort()?;
                }
                Err(e)
            }
        };
        if outcome.is_ok() {
            if let Some(d) = self.durability.as_mut() {
                d.op_finished(&self.state)?;
            }
        }
        if let Ok(&accepted) = outcome.as_ref() {
            self.hub.emit_insert_event(i, accepted, t0, guard);
        }
        outcome
    }

    /// Removes `t` from relation `i`. Deletion never breaks consistency
    /// but can *restore* it, and the chase has no incremental delete — the
    /// touched block's tableau is rebuilt (charged against `guard`).
    /// `Ok(false)` when the tuple was not present. On `Err` (a guard trip
    /// mid-rebuild) the delete did *not* happen: the tuple is restored to
    /// the base state, matching the old tableau that is still answering
    /// queries, and the caller may retry with a fresh guard.
    pub fn delete(&mut self, i: usize, t: &Tuple, guard: &Guard) -> Result<bool, ExecError> {
        // Write-ahead: commit the intent record before any memory changes.
        if let Some(d) = self.durability.as_mut() {
            d.log_op(DurableOp::Delete { rel: i, t })?;
        }
        let removed = match self.hub.delete_op(i, t, guard) {
            Ok(removed) => removed,
            Err(e) => {
                // The hub restored the tuple (delete is all-or-nothing);
                // mark the logged record aborted.
                if let Some(d) = self.durability.as_mut() {
                    d.log_abort()?;
                }
                return Err(e);
            }
        };
        if removed {
            self.state
                .remove(i, t)
                .expect("the hub just removed this tuple from its slot");
        }
        if let Some(d) = self.durability.as_mut() {
            d.op_finished(&self.state)?;
        }
        self.hub.emit_delete_event(i, removed, guard);
        Ok(removed)
    }

    /// The X-total projection `[x]` of the current state. `Ok(None)` when
    /// the state is inconsistent. On IR schemes this is chase-free: the
    /// cached Theorem 4.1 expression is evaluated over the base state.
    pub fn total_projection(
        &self,
        x: AttrSet,
        guard: &Guard,
    ) -> Result<Option<Vec<Tuple>>, ExecError> {
        self.hub.query_live(&self.state, x, guard)
    }

    /// Provenance for a derived tuple: searches the chased block
    /// tableaux (in block order) for a row witnessing `t` total on `x`
    /// and returns its per-column fd-firing chains. Chains are empty
    /// unless the engine was built with
    /// [`Observability::provenance`] set. `None` when no row witnesses
    /// `t` — in particular when `t` is not in the X-total projection.
    pub fn explain(&self, x: AttrSet, t: &Tuple) -> Option<TupleExplanation> {
        self.hub.explain(x, t)
    }

    /// Provenance of the most recent *rejected* insert: the violated key
    /// dependency, the clash column, the two witness rows (with origin
    /// tags), and — with [`Observability::provenance`] — the fd-firing
    /// chains under which the witnesses' left-hand sides came to agree.
    /// Survives the block rebuild that follows a rejection; `None` until
    /// an insert has been rejected.
    pub fn explain_rejection(&self) -> Option<&RejectionExplanation> {
        self.last_rejection.as_ref()
    }

    /// Aggregated chase work across every block tableau.
    pub fn chase_stats(&self) -> idr_chase::ChaseStats {
        self.hub.chase_stats()
    }
}

/// Evaluates `f(0), …, f(count − 1)` into index-ordered slots, on scoped
/// threads when `parallel` (blocks are split evenly across
/// `available_parallelism` workers). The output order — and therefore
/// which error a caller scanning in block order sees first — is identical
/// either way.
pub fn evaluate_blocks<T, F>(count: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(count)
    } else {
        1
    };
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, slice) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(ci * chunk + j));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot is filled by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    // These tests pin the behaviour of the legacy Session shim itself.
    #![allow(deprecated)]

    use super::*;
    use idr_relation::exec::Budget;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};
    use idr_workload::generators::block_chain_scheme;
    use idr_workload::states::{generate, WorkloadConfig};

    fn two_block_scheme() -> DatabaseScheme {
        SchemeBuilder::new("ABCD")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "CD", ["C"])
            .build()
            .unwrap()
    }

    #[test]
    fn engine_precomputes_recognition_and_classification() {
        let e = Engine::new(two_block_scheme());
        let ir = e.ir().expect("two disjoint schemes are IR");
        assert_eq!(ir.len(), 2);
        assert!(e.classification().independence_reducible.is_some());
        assert_eq!(e.classification().bounded, Some(true));
    }

    #[test]
    fn expr_cache_serves_repeat_queries() {
        let e = Engine::new(two_block_scheme());
        let u = e.scheme().universe().clone();
        let g = Guard::unlimited();
        let first = e.total_projection_expr(u.set_of("AB"), &g).unwrap();
        assert!(first.is_some());
        // Second call must not consult the guard's enumeration budget.
        let tight = Guard::new(Budget::unlimited().with_max_enumeration(0));
        let second = e.total_projection_expr(u.set_of("AB"), &tight).unwrap();
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }

    #[test]
    fn parallel_and_serial_sessions_agree() {
        let db = block_chain_scheme(4, 3);
        for seed in 0..4u64 {
            let mut sym = SymbolTable::new();
            let w = generate(
                &db,
                &mut sym,
                WorkloadConfig {
                    entities: 10,
                    fragment_pct: 40,
                    inserts: 8,
                    corrupt_pct: 50,
                    seed,
                },
            );
            let par = Engine::new(db.clone()).with_parallel(true);
            let ser = Engine::new(db.clone()).with_parallel(false);
            let g = Guard::unlimited();
            let sp = par.session(&w.state, &g).unwrap();
            let ss = ser.session(&w.state, &g).unwrap();
            assert_eq!(sp.is_consistent(), ss.is_consistent(), "seed {seed}");
            assert_eq!(
                sp.inconsistent_blocks(),
                ss.inconsistent_blocks(),
                "seed {seed}"
            );
            let x = AttrSet::from_iter(
                (0..2).map(idr_relation::Attribute::from_index),
            );
            assert_eq!(
                sp.total_projection(x, &g).unwrap(),
                ss.total_projection(x, &g).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn session_matches_whole_state_chase() {
        let db = two_block_scheme();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("C", "c"), ("D", "d")]),
            ],
        )
        .unwrap();
        let e = Engine::new(db.clone());
        let g = Guard::unlimited();
        let kd = KeyDeps::of(&db);
        assert_eq!(
            e.is_consistent(&state, &g).unwrap(),
            idr_chase::is_consistent(&db, &state, kd.full(), &g).unwrap()
        );
        for x in [db.universe().set_of("AB"), db.universe().set_of("CD")] {
            assert_eq!(
                e.total_projection(&state, x, &g).unwrap(),
                idr_chase::total_projection(&db, &state, kd.full(), x, &g).unwrap()
            );
        }
    }

    #[test]
    fn insert_accepts_and_rejects_incrementally() {
        let db = two_block_scheme();
        let mut sym = SymbolTable::new();
        let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let e = Engine::new(db.clone());
        let g = Guard::unlimited();
        let mut s = e.session(&state, &g).unwrap();
        let u = db.universe();

        // Consistent insert into the other block.
        let t_ok = Tuple::from_pairs([
            (u.attr_of("C"), sym.intern("c")),
            (u.attr_of("D"), sym.intern("d")),
        ]);
        assert!(s.insert(1, t_ok.clone(), &g).unwrap());
        assert!(s.state().relation(1).contains(&t_ok));

        // Key violation in block 0: rejected, state unchanged, session
        // still consistent.
        let t_bad = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("B"), sym.intern("b2")),
        ]);
        assert!(!s.insert(0, t_bad.clone(), &g).unwrap());
        assert!(!s.state().relation(0).contains(&t_bad));
        assert!(s.is_consistent());

        // The rejected tuple is accepted after deleting its rival.
        let t_old = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("B"), sym.intern("b")),
        ]);
        assert!(s.delete(0, &t_old, &g).unwrap());
        assert!(s.insert(0, t_bad, &g).unwrap());
        assert!(s.is_consistent());
    }

    #[test]
    fn inconsistent_base_is_a_verdict_not_an_error() {
        let db = two_block_scheme();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
                ("R2", &[("C", "c"), ("D", "d")]),
            ],
        )
        .unwrap();
        let e = Engine::new(db.clone());
        let g = Guard::unlimited();
        let mut s = e.session(&state, &g).unwrap();
        assert!(!s.is_consistent());
        assert_eq!(s.inconsistent_blocks(), vec![0]);
        assert!(s.total_projection(db.universe().set_of("AB"), &g).unwrap().is_none());
        // Inserting into the poisoned block is an error; deleting the
        // offender restores consistency.
        let u = db.universe();
        let t = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a2")),
            (u.attr_of("B"), sym.intern("b")),
        ]);
        assert!(matches!(
            s.insert(0, t, &g),
            Err(ExecError::Inconsistent { .. })
        ));
        let rival = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("B"), sym.intern("b2")),
        ]);
        assert!(s.delete(0, &rival, &g).unwrap());
        assert!(s.is_consistent());
    }

    #[test]
    fn non_ir_scheme_uses_the_whole_state_backend() {
        // Example 2: rejected by Algorithm 6.
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let e = Engine::new(db.clone());
        assert!(e.ir().is_none());
        let mut sym = SymbolTable::new();
        let state = state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b"), ("C", "c")]),
            ],
        )
        .unwrap();
        let g = Guard::unlimited();
        let s = e.session(&state, &g).unwrap();
        assert!(s.is_consistent());
        // [AC] is derivable through the chase even with no AC relation.
        let proj = s.total_projection(db.universe().set_of("AC"), &g).unwrap().unwrap();
        assert_eq!(proj.len(), 1);
        let kd = KeyDeps::of(&db);
        assert_eq!(
            Some(proj),
            idr_chase::total_projection(&db, &state, kd.full(), db.universe().set_of("AC"), &g)
                .unwrap()
        );
    }

    #[test]
    fn shared_guard_budget_trips_in_both_modes() {
        let db = block_chain_scheme(3, 3);
        let mut sym = SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 20,
                fragment_pct: 60,
                inserts: 0,
                corrupt_pct: 0,
                seed: 1,
            },
        );
        for parallel in [false, true] {
            let e = Engine::new(db.clone()).with_parallel(parallel);
            let tight = Guard::new(Budget::unlimited().with_max_chase_steps(1));
            let err = e.session(&w.state, &tight).unwrap_err();
            assert!(
                matches!(err, ExecError::BudgetExceeded { .. }),
                "parallel={parallel}: {err:?}"
            );
        }
    }

    #[test]
    fn evaluate_blocks_is_index_ordered() {
        for parallel in [false, true] {
            let got = evaluate_blocks(17, parallel, |i| i * i);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "parallel={parallel}");
        }
    }

    /// star(3) — R0(K A0), R1(K A1), R2(K A2), all keyed on K — with
    /// three rows sharing the hub value, so any tableau rebuild must fire
    /// at least one fd rule and a `max_chase_steps = 0` guard trips
    /// mid-rebuild.
    fn tripping_session(
        sym: &mut SymbolTable,
    ) -> (&'static Engine, Session<'static>) {
        let db = idr_workload::generators::star_scheme(3);
        let state = state_of(
            &db,
            sym,
            &[
                ("R0", &[("K", "k"), ("A0", "x0")]),
                ("R1", &[("K", "k"), ("A1", "x1")]),
                ("R2", &[("K", "k"), ("A2", "x2")]),
            ],
        )
        .unwrap();
        let engine = Box::leak(Box::new(Engine::new(db)));
        let session = engine.session(&state, &Guard::unlimited()).unwrap();
        (engine, session)
    }

    #[test]
    fn delete_is_atomic_under_a_guard_trip() {
        let mut sym = SymbolTable::new();
        let (engine, mut s) = tripping_session(&mut sym);
        let u = engine.scheme().universe();
        let t = Tuple::from_pairs([
            (u.attr_of("K"), sym.intern("k")),
            (u.attr_of("A2"), sym.intern("x2")),
        ]);
        let x = AttrSet::from_iter([u.attr_of("K"), u.attr_of("A2")]);

        let tight = Guard::new(Budget::unlimited().with_max_chase_steps(0));
        let err = s.delete(2, &t, &tight).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }), "{err:?}");

        // The failed delete must not have happened: the tuple is still in
        // the base state, and both query paths still see it.
        let g = Guard::unlimited();
        assert!(s.state().relation(2).contains(&t));
        let proj = s.total_projection(x, &g).unwrap().unwrap();
        assert!(proj.contains(&t), "expression path lost the tuple");
        assert!(s.explain(x, &t).is_some(), "chase path lost the tuple");

        // A retry with budget completes the delete on both paths.
        assert!(s.delete(2, &t, &g).unwrap());
        assert!(!s.state().relation(2).contains(&t));
        let proj = s.total_projection(x, &g).unwrap().unwrap();
        assert!(!proj.contains(&t));
        assert!(s.explain(x, &t).is_none());
    }

    #[test]
    fn insert_rolls_back_the_speculative_row_on_a_guard_trip() {
        let mut sym = SymbolTable::new();
        let (engine, mut s) = tripping_session(&mut sym);
        let u = engine.scheme().universe();
        // A second hub value: chasing it against the existing "k" rows
        // fires no rule directly, but the three new-row unions do.
        let t = Tuple::from_pairs([
            (u.attr_of("K"), sym.intern("k")),
            (u.attr_of("A2"), sym.intern("x2b")),
        ]);
        let x = AttrSet::from_iter([u.attr_of("K"), u.attr_of("A2")]);

        let tight = Guard::new(Budget::unlimited().with_max_chase_steps(0));
        let err = s.insert(2, t.clone(), &tight).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }), "{err:?}");

        // The failed insert must not be visible through either path: the
        // base state lacks the row, and the block tableau must not keep
        // answering from the speculative push.
        assert!(!s.state().relation(2).contains(&t));
        assert!(
            s.explain(x, &t).is_none(),
            "speculative row survived in the block tableau"
        );
        // Consistency is a verdict about the *base* state again.
        assert!(s.is_consistent());
    }

    #[test]
    fn poisoned_expr_cache_recovers_with_a_typed_error() {
        let db = two_block_scheme();
        let engine = Engine::new(db.clone());
        let mut sym = SymbolTable::new();
        let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let g = Guard::unlimited();
        let s = engine.session(&state, &g).unwrap();
        let x = db.universe().set_of("AB");
        assert!(s.total_projection(x, &g).unwrap().is_some());

        engine.inject_expr_cache_panic();

        // The first query after the panic surfaces a typed error instead
        // of cascading the panic...
        let err = s.total_projection(x, &g).unwrap_err();
        assert!(
            matches!(
                &err,
                ExecError::Faulted { kind: idr_relation::exec::FaultKind::Permanent, operation, .. }
                if operation.contains("poisoned")
            ),
            "{err:?}"
        );
        // ...and the cache has recovered: the next query recomputes.
        let proj = s.total_projection(x, &g).unwrap().unwrap();
        assert_eq!(proj.len(), 1);
    }
}
