//! The scheme classifier: assembles the paper's full taxonomy for a given
//! database scheme — the tool behind the class-inclusion experiments
//! (EXPERIMENTS.md TH-INCL) and the `scheme_zoo` example.

use idr_fd::KeyDeps;
use idr_relation::DatabaseScheme;

use crate::baselines;
use crate::key_equiv::whole_scheme_key_equivalent;
use crate::recognition::{recognize, IrScheme, Recognition};
use crate::split::is_split_free;

/// Everything the paper lets us decide about a database scheme with
/// embedded key dependencies. `Option<bool>` fields are `None` when the
/// property is not decided by the paper's results for this scheme
/// (boundedness and algebraic-maintainability are only *established* for
/// independence-reducible schemes; outside the class they may still hold).
#[derive(Clone, Debug)]
pub struct Classification {
    /// BCNF with respect to the embedded key dependencies.
    pub bcnf: bool,
    /// Independent (uniqueness condition) — Sagiv's class \[S1]\[S2].
    pub independent: bool,
    /// γ-acyclic hypergraph — with BCNF, the \[CH1] class.
    pub gamma_acyclic: bool,
    /// The whole scheme is key-equivalent (§3).
    pub key_equivalent: bool,
    /// Accepted by Algorithm 6, with the witnessing partition.
    pub independence_reducible: Option<IrScheme>,
    /// Every block of the partition is split-free (§5.4); `None` when not
    /// independence-reducible.
    pub split_free: Option<bool>,
    /// Constant-time-maintainable. Decided by Theorem 5.5 (ctm ⟺
    /// split-free) when independence-reducible; `None` otherwise.
    pub ctm: Option<bool>,
    /// Bounded wrt the key dependencies. `true` by Theorem 4.1 when
    /// independence-reducible; `None` (unknown) otherwise.
    pub bounded: Option<bool>,
    /// Algebraic-maintainable. `true` by Theorem 4.2 when
    /// independence-reducible; `None` otherwise.
    pub algebraic_maintainable: Option<bool>,
}

/// Classifies a database scheme against every class the paper discusses.
pub fn classify(scheme: &DatabaseScheme) -> Classification {
    let kd = KeyDeps::of(scheme);
    let bcnf = baselines::is_bcnf(scheme, &kd);
    let independent = baselines::is_independent(scheme, &kd);
    let gamma_acyclic = baselines::is_gamma_acyclic(scheme);
    let key_equivalent = whole_scheme_key_equivalent(scheme, &kd);
    let independence_reducible = match recognize(scheme, &kd) {
        Recognition::Accepted(ir) => Some(ir),
        Recognition::Rejected(_) => None,
    };
    let split_free = independence_reducible.as_ref().map(|ir| {
        ir.partition
            .iter()
            .all(|block| is_split_free(scheme, &kd, block))
    });
    let ctm = split_free;
    let (bounded, algebraic_maintainable) = if independence_reducible.is_some() {
        (Some(true), Some(true))
    } else {
        (None, None)
    };
    Classification {
        bcnf,
        independent,
        gamma_acyclic,
        key_equivalent,
        independence_reducible,
        split_free,
        ctm,
        bounded,
        algebraic_maintainable,
    }
}

impl Classification {
    /// One-line summary for tables and examples.
    pub fn summary(&self) -> String {
        let ir = self.independence_reducible.is_some();
        let opt = |o: Option<bool>| match o {
            Some(true) => "yes",
            Some(false) => "no",
            None => "?",
        };
        format!(
            "bcnf={} independent={} γ-acyclic={} key-equivalent={} ind-reducible={} split-free={} ctm={} bounded={} alg-maint={}",
            if self.bcnf { "yes" } else { "no" },
            if self.independent { "yes" } else { "no" },
            if self.gamma_acyclic { "yes" } else { "no" },
            if self.key_equivalent { "yes" } else { "no" },
            if ir { "yes" } else { "no" },
            opt(self.split_free),
            opt(self.ctm),
            opt(self.bounded),
            opt(self.algebraic_maintainable),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::SchemeBuilder;

    #[test]
    fn example1_r_full_classification() {
        // The headline claims of Example 1: not independent, not
        // γ-acyclic, but independence-reducible, bounded and ctm.
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("R1", "HRC", ["HR"])
            .scheme("R2", "HTR", ["HT", "HR"])
            .scheme("R3", "HTC", ["HT"])
            .scheme("R4", "CSG", ["CS"])
            .scheme("R5", "HSR", ["HS"])
            .build()
            .unwrap();
        let c = classify(&db);
        assert!(!c.independent);
        assert!(!c.gamma_acyclic);
        assert!(c.independence_reducible.is_some());
        assert_eq!(c.bounded, Some(true));
        assert_eq!(c.algebraic_maintainable, Some(true));
        assert_eq!(c.ctm, Some(true), "Example 1's R is ctm");
    }

    #[test]
    fn example5_scheme_is_accepted_but_not_ctm() {
        // Key-equivalent but split (key BC) ⇒ algebraic-maintainable, not
        // ctm (Corollary 3.3).
        let db = SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap();
        let c = classify(&db);
        assert!(c.key_equivalent);
        assert!(c.independence_reducible.is_some());
        assert_eq!(c.ctm, Some(false));
        assert_eq!(c.algebraic_maintainable, Some(true));
    }

    #[test]
    fn example2_scheme_is_outside_the_class() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let c = classify(&db);
        assert!(c.independence_reducible.is_none());
        assert_eq!(c.bounded, None);
        assert_eq!(c.ctm, None);
        assert!(c.summary().contains("ind-reducible=no"));
    }

    #[test]
    fn independent_scheme_classification() {
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("S1", "HRCT", ["HR", "HT"])
            .scheme("S2", "CSG", ["CS"])
            .scheme("S3", "HSR", ["HS"])
            .build()
            .unwrap();
        let c = classify(&db);
        assert!(c.independent);
        assert!(c.independence_reducible.is_some());
        // Independent ⇒ ctm (singleton blocks cannot split keys... they
        // can, but for this scheme they do not).
        assert_eq!(c.ctm, Some(true));
    }

    #[test]
    fn example9_chain_is_ctm() {
        let db = SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "CD", ["C", "D"])
            .scheme("R4", "DE", ["D", "E"])
            .build()
            .unwrap();
        let c = classify(&db);
        assert!(c.key_equivalent);
        assert_eq!(c.ctm, Some(true));
    }
}
