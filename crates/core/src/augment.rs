//! Augmentation and reduction (§4.3): `AUG(R) = R ∪ S` for
//! `S ⊆ SUBSET(R)`, and `RED(R)`, the reduction dropping relation schemes
//! properly contained in others. Theorem 4.3: the class of
//! independence-reducible schemes is closed under augmentation;
//! Corollary 4.2: `R` is independence-reducible iff `RED(R)` is.

use idr_fd::{keys::candidate_keys, KeyDeps};
use idr_relation::{AttrSet, DatabaseScheme, RelationScheme};

/// Adds a new relation scheme over `attrs` (which must be a nonempty
/// subset of some existing scheme) to the database scheme. The new
/// scheme's keys are its candidate keys with respect to the embedded key
/// dependencies — so the embedded cover is unchanged up to equivalence.
///
/// # Panics
///
/// Panics if `attrs` is empty or not a subset of any existing scheme
/// (fixtures want loud failures; `AUG` is only defined on `SUBSET(R)`).
pub fn augment(scheme: &DatabaseScheme, kd: &KeyDeps, name: &str, attrs: AttrSet) -> DatabaseScheme {
    assert!(!attrs.is_empty(), "AUG: empty subset");
    assert!(
        scheme.schemes().iter().any(|s| attrs.is_subset(s.attrs())),
        "AUG: {attrs:?} is not a subset of any relation scheme"
    );
    let keys = {
        let ks = candidate_keys(kd.full(), attrs);
        if ks.is_empty() {
            vec![attrs]
        } else {
            ks
        }
    };
    let mut schemes: Vec<RelationScheme> = scheme.schemes().to_vec();
    schemes.push(RelationScheme::new(name, attrs, keys).expect("keys embedded by construction"));
    DatabaseScheme::new(scheme.universe().clone(), schemes)
        .expect("augmentation preserves the cover")
}

/// `RED(R)`: drops every relation scheme that is a proper subset of
/// another (and deduplicates equal schemes, keeping the first).
pub fn reduce(scheme: &DatabaseScheme) -> DatabaseScheme {
    let all = scheme.schemes();
    let keep: Vec<RelationScheme> = all
        .iter()
        .enumerate()
        .filter(|(i, s)| {
            !all.iter().enumerate().any(|(j, t)| {
                *i != j
                    && (s.attrs().is_proper_subset(t.attrs())
                        || (s.attrs() == t.attrs() && j < *i))
            })
        })
        .map(|(_, s)| s.clone())
        .collect();
    DatabaseScheme::new(scheme.universe().clone(), keep)
        .expect("reduction preserves the cover")
}

/// Whether the database scheme is reduced (no scheme a proper subset of
/// another).
pub fn is_reduced(scheme: &DatabaseScheme) -> bool {
    let all = scheme.schemes();
    !all.iter().enumerate().any(|(i, s)| {
        all.iter()
            .enumerate()
            .any(|(j, t)| i != j && s.attrs().is_subset(t.attrs()) && s.attrs() != t.attrs())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognition::recognize;
    use idr_relation::SchemeBuilder;

    fn example11() -> DatabaseScheme {
        SchemeBuilder::new("ABCDEFG")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .scheme("R4", "AD", ["A"])
            .scheme("R5", "DEF", ["D"])
            .scheme("R6", "DEG", ["D"])
            .build()
            .unwrap()
    }

    #[test]
    fn augment_with_keyless_subset_stays_accepted() {
        // Case 1 of Theorem 4.3: S embeds no key of any scheme.
        let db = example11();
        let kd = KeyDeps::of(&db);
        assert!(recognize(&db, &kd).is_accepted());
        // EF ⊆ DEF embeds no key (keys are A, B, C, D).
        let aug = augment(&db, &kd, "S", db.universe().set_of("EF"));
        let kd2 = KeyDeps::of(&aug);
        assert!(recognize(&aug, &kd2).is_accepted());
    }

    #[test]
    fn augment_with_key_subset_stays_accepted() {
        // Case 2 of Theorem 4.3: S embeds a key.
        let db = example11();
        let kd = KeyDeps::of(&db);
        // DE ⊆ DEF embeds key D.
        let aug = augment(&db, &kd, "S", db.universe().set_of("DE"));
        let kd2 = KeyDeps::of(&aug);
        let ir = recognize(&aug, &kd2).accepted().expect("AUG closure");
        // S joins block 2 ({R5, R6}).
        let s_idx = aug.index_of("S").unwrap();
        assert_eq!(ir.block_of[s_idx], ir.block_of[4]);
    }

    #[test]
    fn augmented_subset_keys_are_candidate_keys() {
        let db = example11();
        let kd = KeyDeps::of(&db);
        let aug = augment(&db, &kd, "S", db.universe().set_of("DF"));
        let s = &aug.schemes()[aug.index_of("S").unwrap()];
        // Keys of DF ⊆ DEF wrt F: D determines F, F determines nothing.
        assert_eq!(s.keys(), &[db.universe().set_of("D")]);
    }

    #[test]
    fn reduce_drops_contained_schemes() {
        let db = example11();
        let kd = KeyDeps::of(&db);
        let aug = augment(&db, &kd, "S", db.universe().set_of("DE"));
        assert!(!is_reduced(&aug));
        let red = reduce(&aug);
        assert!(is_reduced(&red));
        assert_eq!(red.len(), db.len());
        // Corollary 4.2 both ways.
        let kd_aug = KeyDeps::of(&aug);
        let kd_red = KeyDeps::of(&red);
        assert_eq!(
            recognize(&aug, &kd_aug).is_accepted(),
            recognize(&red, &kd_red).is_accepted()
        );
    }

    #[test]
    #[should_panic(expected = "not a subset")]
    fn augment_rejects_non_subsets() {
        let db = example11();
        let kd = KeyDeps::of(&db);
        // AG spans two schemes.
        let _ = augment(&db, &kd, "S", db.universe().set_of("AG"));
    }
}
