//! Randomized property tests over *random* schemes (not just the curated
//! families):
//!
//! * KEP produces the key-equivalent partition: every block is
//!   key-equivalent, and no union of two blocks is (maximality /
//!   uniqueness, Lemmas 5.1–5.2).
//! * The fast splitness test (closure form of Lemma 3.8) agrees with the
//!   literal chase form.
//! * On accepted schemes, Algorithm 2 agrees with the chase on random
//!   insert workloads, and Algorithm 5 agrees wherever it applies.
//! * Acceptance by Algorithm 6 coincides with the definitional check on
//!   the KEP partition (one direction of Theorem 5.1; the other — no
//!   *other* partition can work when KEP's fails — is spot-checked on
//!   singleton partitions).
//!
//! Seeded [`SplitMix64`] loops — deterministic, offline.

use idr_core::kep::key_equivalent_partition;
use idr_core::key_equiv::is_key_equivalent;
use idr_core::maintain::{algorithm2, algorithm5, IrMaintainer, StateIndex};
use idr_core::recognition::{is_ir_partition, recognize};
use idr_core::split::{is_split_free, split_keys, split_keys_via_chase};
use idr_fd::KeyDeps;
use idr_relation::exec::{Guard, RetryPolicy};
use idr_relation::rng::SplitMix64;
use idr_relation::DatabaseScheme;
use idr_workload::generators::random_scheme;
use idr_workload::states::{generate, WorkloadConfig};

const CASES: usize = 128;

fn g() -> Guard {
    Guard::unlimited()
}

fn rp() -> RetryPolicy {
    RetryPolicy::none()
}

/// Draws random schemes until the generator converges (it bails on
/// degenerate draws), so every case gets a scheme.
fn rand_scheme(rng: &mut SplitMix64) -> DatabaseScheme {
    loop {
        let width = rng.gen_range_inclusive(3, 6);
        let n = rng.gen_range_inclusive(2, 5);
        if let Some(db) = random_scheme(rng, width, n) {
            return db;
        }
    }
}

#[test]
fn kep_blocks_are_key_equivalent_and_maximal() {
    let mut master = SplitMix64::new(0xE001);
    for case in 0..CASES {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        // Partition covers all schemes exactly once.
        let mut all: Vec<usize> = part.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..db.len()).collect::<Vec<_>>(), "case {case}");
        // Every block is key-equivalent.
        for block in &part {
            assert!(
                is_key_equivalent(&db, &kd, block),
                "case {case}: block {block:?}"
            );
        }
        // Maximality: merging any two blocks breaks key-equivalence
        // (Lemma 5.2: every key-equivalent subset is inside one block).
        for i in 0..part.len() {
            for j in (i + 1)..part.len() {
                let merged: Vec<usize> =
                    part[i].iter().chain(part[j].iter()).copied().collect();
                assert!(
                    !is_key_equivalent(&db, &kd, &merged),
                    "case {case}: blocks {i} and {j} merge into a key-equivalent set"
                );
            }
        }
    }
}

#[test]
fn split_test_forms_agree() {
    let mut master = SplitMix64::new(0xE002);
    for case in 0..CASES {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        for block in &part {
            assert_eq!(
                split_keys(&db, &kd, block),
                split_keys_via_chase(&db, &kd, block),
                "case {case}"
            );
        }
    }
}

#[test]
fn recognition_matches_definition_on_kep_partition() {
    let mut master = SplitMix64::new(0xE003);
    for case in 0..CASES {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        match recognize(&db, &kd) {
            idr_core::Recognition::Accepted(ir) => {
                assert!(is_ir_partition(&db, &kd, &ir.partition), "case {case}");
            }
            idr_core::Recognition::Rejected(_) => {
                assert!(!is_ir_partition(&db, &kd, &part), "case {case}");
                // The all-singletons partition cannot work either unless
                // it is the KEP partition.
                let singles: Vec<Vec<usize>> = (0..db.len()).map(|i| vec![i]).collect();
                if singles != part {
                    assert!(
                        !is_ir_partition(&db, &kd, &singles)
                            || !singles.iter().all(|b| is_key_equivalent(&db, &kd, b)),
                        "case {case}"
                    );
                }
            }
        }
    }
}

#[test]
fn kerep_is_confluent_under_input_order() {
    // Algorithm 1's result is independent of the order tuples are
    // merged in (the chase is Church–Rosser; the whole-tuple merge
    // inherits it).
    let mut master = SplitMix64::new(0xE004);
    for case in 0..CASES {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            continue;
        };
        if ir.len() != 1 {
            continue;
        }
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 10,
                fragment_pct: 60,
                inserts: 0,
                corrupt_pct: 0,
                seed: rng.next_u64(),
            },
        );
        let keys = ir.block_keys[0].clone();
        let tuples: Vec<idr_relation::Tuple> =
            w.state.iter_all().map(|(_, t)| t.clone()).collect();
        let mut shuffled = tuples.clone();
        rng.shuffle(&mut shuffled);
        let r1 = idr_core::KeRep::build(&keys, tuples, &g()).unwrap();
        let r2 = idr_core::KeRep::build(&keys, shuffled, &g()).unwrap();
        let collect = |r: &idr_core::KeRep| {
            let mut v: Vec<idr_relation::Tuple> = r.iter().cloned().collect();
            v.sort();
            v
        };
        assert_eq!(collect(&r1), collect(&r2), "case {case}");
    }
}

#[test]
fn algorithm2_matches_chase_on_random_schemes() {
    let mut master = SplitMix64::new(0xE005);
    for case in 0..CASES {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            continue;
        };
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 12,
                fragment_pct: 50,
                inserts: 8,
                corrupt_pct: 50,
                seed: rng.next_u64(),
            },
        );
        // The generated state is consistent by construction; Algorithm 1
        // must accept it.
        let m = IrMaintainer::new(&db, &ir, &w.state, &g())
            .unwrap_or_else(|_| panic!("case {case}: Algorithm 1 rejected a consistent state"));
        for (i, t) in &w.inserts {
            let b = ir.block_of[*i];
            let (outcome, _) = algorithm2(&db, &m.reps()[b], *i, t, &g(), &rp()).unwrap();
            let mut updated = w.state.clone();
            updated.insert(*i, t.clone()).unwrap();
            let oracle = idr_chase::is_consistent(&db, &updated, kd.full(), &g()).unwrap();
            assert_eq!(
                outcome.is_consistent(),
                oracle,
                "case {case}: insert {t:?} into {i}"
            );
        }
    }
}

#[test]
fn algorithm5_matches_chase_on_random_split_free_schemes() {
    let mut master = SplitMix64::new(0xE006);
    for case in 0..CASES {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            continue;
        };
        if !ir.partition.iter().all(|b| is_split_free(&db, &kd, b)) {
            continue;
        }
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 12,
                fragment_pct: 50,
                inserts: 8,
                corrupt_pct: 50,
                seed: rng.next_u64(),
            },
        );
        for (i, t) in &w.inserts {
            let b = ir.block_of[*i];
            let idx = StateIndex::build(&db, &ir.partition[b], &w.state)
                .expect("generated states are locally consistent");
            let (outcome, _) = algorithm5(&db, &idx, *i, t, &g(), &rp()).unwrap();
            let mut updated = w.state.clone();
            updated.insert(*i, t.clone()).unwrap();
            let oracle = idr_chase::is_consistent(&db, &updated, kd.full(), &g()).unwrap();
            assert_eq!(
                outcome.is_consistent(),
                oracle,
                "case {case}: insert {t:?} into {i}"
            );
        }
    }
}

#[test]
fn total_projection_matches_chase_on_random_schemes() {
    let mut master = SplitMix64::new(0xE007);
    for case in 0..CASES {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            continue;
        };
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 10,
                fragment_pct: 50,
                inserts: 0,
                corrupt_pct: 0,
                seed: rng.next_u64(),
            },
        );
        for s in db.schemes().iter().take(3) {
            let x = s.attrs();
            let fast = idr_core::query::ir_total_projection(&db, &kd, &ir, &w.state, x, &g())
                .unwrap();
            let oracle = idr_chase::total_projection(&db, &w.state, kd.full(), x, &g())
                .unwrap()
                .expect("generated states are consistent");
            assert_eq!(fast.sorted_tuples(), oracle, "case {case}: X = {x:?}");
        }
    }
}

#[test]
fn theorem_5_1_algorithm6_is_exact() {
    // Theorem 5.1 both ways: Algorithm 6 accepts iff *some* partition
    // satisfies the definition — checked by brute force over every
    // partition of the scheme set.
    let mut master = SplitMix64::new(0xE008);
    for case in 0..24 {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        if db.len() > 6 {
            continue;
        }
        let kd = KeyDeps::of(&db);
        let fast = recognize(&db, &kd).is_accepted();
        let brute = idr_core::recognition::is_independence_reducible_bruteforce(&db, &kd);
        assert_eq!(
            fast, brute,
            "case {case}: Algorithm 6 is not exact on {db:?}"
        );
    }
}

#[test]
fn uniqueness_condition_is_semantically_sound() {
    // One-sided semantic check: wherever the uniqueness condition
    // claims independence (on BCNF schemes, where it is exact), the
    // bounded LSAT fragment contains no locally-consistent globally-
    // inconsistent state.
    let mut master = SplitMix64::new(0xE009);
    for case in 0..24 {
        let mut rng = master.split();
        let db = rand_scheme(&mut rng);
        let kd = KeyDeps::of(&db);
        if !db.schemes().iter().all(|s| s.attrs().len() <= 3) || db.len() > 4 {
            continue;
        }
        if idr_fd::normal::satisfies_uniqueness(&db, &kd)
            && idr_fd::normal::is_bcnf(&db, kd.full())
        {
            let mut sym = idr_relation::SymbolTable::new();
            let w =
                idr_core::semantic::find_independence_counterexample(&db, &kd, &mut sym, 2);
            assert!(
                w.is_none(),
                "case {case}: uniqueness claimed independence but {w:?}"
            );
        }
    }
}
