//! Property tests over *random* schemes (not just the curated families):
//!
//! * KEP produces the key-equivalent partition: every block is
//!   key-equivalent, and no union of two blocks is (maximality /
//!   uniqueness, Lemmas 5.1–5.2).
//! * The fast splitness test (closure form of Lemma 3.8) agrees with the
//!   literal chase form.
//! * On accepted schemes, Algorithm 2 agrees with the chase on random
//!   insert workloads, and Algorithm 5 agrees wherever it applies.
//! * Acceptance by Algorithm 6 coincides with the definitional check on
//!   the KEP partition (one direction of Theorem 5.1; the other — no
//!   *other* partition can work when KEP's fails — is spot-checked on
//!   singleton partitions).

use idr_core::kep::key_equivalent_partition;
use idr_core::key_equiv::is_key_equivalent;
use idr_core::maintain::{algorithm2, algorithm5, IrMaintainer, StateIndex};
use idr_core::recognition::{is_ir_partition, recognize};
use idr_core::split::{is_split_free, split_keys, split_keys_via_chase};
use idr_fd::KeyDeps;
use idr_relation::DatabaseScheme;
use idr_workload::generators::random_scheme;
use idr_workload::states::{generate, WorkloadConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_scheme() -> impl Strategy<Value = DatabaseScheme> {
    (any::<u64>(), 3..=6usize, 2..=5usize).prop_filter_map(
        "random_scheme converged",
        |(seed, width, n)| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_scheme(&mut rng, width, n)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kep_blocks_are_key_equivalent_and_maximal(db in arb_scheme()) {
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        // Partition covers all schemes exactly once.
        let mut all: Vec<usize> = part.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..db.len()).collect::<Vec<_>>());
        // Every block is key-equivalent.
        for block in &part {
            prop_assert!(is_key_equivalent(&db, &kd, block), "block {block:?}");
        }
        // Maximality: merging any two blocks breaks key-equivalence
        // (Lemma 5.2: every key-equivalent subset is inside one block).
        for i in 0..part.len() {
            for j in (i + 1)..part.len() {
                let merged: Vec<usize> =
                    part[i].iter().chain(part[j].iter()).copied().collect();
                prop_assert!(
                    !is_key_equivalent(&db, &kd, &merged),
                    "blocks {i} and {j} merge into a key-equivalent set"
                );
            }
        }
    }

    #[test]
    fn split_test_forms_agree(db in arb_scheme()) {
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        for block in &part {
            prop_assert_eq!(
                split_keys(&db, &kd, block),
                split_keys_via_chase(&db, &kd, block)
            );
        }
    }

    #[test]
    fn recognition_matches_definition_on_kep_partition(db in arb_scheme()) {
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        match recognize(&db, &kd) {
            idr_core::Recognition::Accepted(ir) => {
                prop_assert!(is_ir_partition(&db, &kd, &ir.partition));
            }
            idr_core::Recognition::Rejected(_) => {
                prop_assert!(!is_ir_partition(&db, &kd, &part));
                // The all-singletons partition cannot work either unless
                // it is the KEP partition.
                let singles: Vec<Vec<usize>> = (0..db.len()).map(|i| vec![i]).collect();
                if singles != part {
                    prop_assert!(!is_ir_partition(&db, &kd, &singles)
                        || !singles.iter().all(|b| is_key_equivalent(&db, &kd, b)));
                }
            }
        }
    }

    #[test]
    fn kerep_is_confluent_under_input_order(
        db in arb_scheme(),
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        // Algorithm 1's result is independent of the order tuples are
        // merged in (the chase is Church–Rosser; the whole-tuple merge
        // inherits it).
        use rand::seq::SliceRandom;
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            return Ok(());
        };
        prop_assume!(ir.len() == 1);
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(&db, &mut sym, WorkloadConfig {
            entities: 10,
            fragment_pct: 60,
            inserts: 0,
            corrupt_pct: 0,
            seed,
        });
        let keys = ir.block_keys[0].clone();
        let tuples: Vec<idr_relation::Tuple> =
            w.state.iter_all().map(|(_, t)| t.clone()).collect();
        let mut shuffled = tuples.clone();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        shuffled.shuffle(&mut rng);
        let r1 = idr_core::KeRep::build(&keys, tuples).unwrap();
        let r2 = idr_core::KeRep::build(&keys, shuffled).unwrap();
        let collect = |r: &idr_core::KeRep| {
            let mut v: Vec<idr_relation::Tuple> = r.iter().cloned().collect();
            v.sort();
            v
        };
        prop_assert_eq!(collect(&r1), collect(&r2));
    }

    #[test]
    fn algorithm2_matches_chase_on_random_schemes(
        db in arb_scheme(),
        seed in any::<u64>(),
    ) {
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            return Ok(());
        };
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(&db, &mut sym, WorkloadConfig {
            entities: 12,
            fragment_pct: 50,
            inserts: 8,
            corrupt_pct: 50,
            seed,
        });
        let Ok(m) = IrMaintainer::new(&db, &ir, &w.state) else {
            // The generated state is consistent by construction; Algorithm
            // 1 must accept it.
            return Err(TestCaseError::fail("Algorithm 1 rejected a consistent state"));
        };
        for (i, t) in &w.inserts {
            let b = ir.block_of[*i];
            let (outcome, _) = algorithm2(&db, &m.reps()[b], *i, t);
            let mut updated = w.state.clone();
            updated.insert(*i, t.clone()).unwrap();
            let oracle = idr_chase::is_consistent(&db, &updated, kd.full());
            prop_assert_eq!(outcome.is_consistent(), oracle, "insert {:?} into {}", t, i);
        }
    }

    #[test]
    fn algorithm5_matches_chase_on_random_split_free_schemes(
        db in arb_scheme(),
        seed in any::<u64>(),
    ) {
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            return Ok(());
        };
        if !ir.partition.iter().all(|b| is_split_free(&db, &kd, b)) {
            return Ok(());
        }
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(&db, &mut sym, WorkloadConfig {
            entities: 12,
            fragment_pct: 50,
            inserts: 8,
            corrupt_pct: 50,
            seed,
        });
        for (i, t) in &w.inserts {
            let b = ir.block_of[*i];
            let idx = StateIndex::build(&db, &ir.partition[b], &w.state)
                .expect("generated states are locally consistent");
            let (outcome, _) = algorithm5(&db, &idx, *i, t);
            let mut updated = w.state.clone();
            updated.insert(*i, t.clone()).unwrap();
            let oracle = idr_chase::is_consistent(&db, &updated, kd.full());
            prop_assert_eq!(outcome.is_consistent(), oracle, "insert {:?} into {}", t, i);
        }
    }

    #[test]
    fn total_projection_matches_chase_on_random_schemes(
        db in arb_scheme(),
        seed in any::<u64>(),
    ) {
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            return Ok(());
        };
        let mut sym = idr_relation::SymbolTable::new();
        let w = generate(&db, &mut sym, WorkloadConfig {
            entities: 10,
            fragment_pct: 50,
            inserts: 0,
            corrupt_pct: 0,
            seed,
        });
        for s in db.schemes().iter().take(3) {
            let x = s.attrs();
            let fast = idr_core::query::ir_total_projection(&db, &kd, &ir, &w.state, x)
                .unwrap();
            let oracle = idr_chase::total_projection(&db, &w.state, kd.full(), x).unwrap();
            prop_assert_eq!(fast.sorted_tuples(), oracle, "X = {:?}", x);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem_5_1_algorithm6_is_exact(db in arb_scheme()) {
        // Theorem 5.1 both ways: Algorithm 6 accepts iff *some* partition
        // satisfies the definition — checked by brute force over every
        // partition of the scheme set.
        prop_assume!(db.len() <= 6);
        let kd = KeyDeps::of(&db);
        let fast = recognize(&db, &kd).is_accepted();
        let brute =
            idr_core::recognition::is_independence_reducible_bruteforce(&db, &kd);
        prop_assert_eq!(fast, brute, "Algorithm 6 is not exact on {:?}", db);
    }

    #[test]
    fn uniqueness_condition_is_semantically_sound(db in arb_scheme()) {
        // One-sided semantic check: wherever the uniqueness condition
        // claims independence (on BCNF schemes, where it is exact), the
        // bounded LSAT fragment contains no locally-consistent globally-
        // inconsistent state.
        let kd = KeyDeps::of(&db);
        prop_assume!(db.schemes().iter().all(|s| s.attrs().len() <= 3));
        prop_assume!(db.len() <= 4);
        if idr_fd::normal::satisfies_uniqueness(&db, &kd)
            && idr_fd::normal::is_bcnf(&db, kd.full())
        {
            let mut sym = idr_relation::SymbolTable::new();
            let w = idr_core::semantic::find_independence_counterexample(
                &db, &kd, &mut sym, 2,
            );
            prop_assert!(w.is_none(), "uniqueness claimed independence but {w:?}");
        }
    }
}
