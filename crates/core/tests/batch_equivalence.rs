//! Tier-1 batch==per-op equivalence.
//!
//! The batch pipeline's contract is observational equivalence with
//! per-op serial application: same per-op verdicts, same final state,
//! same consistency verdict. The fuzzing arm (`idr fuzz --batch`)
//! checks this over random schemes; these tests pin it over every
//! scheme the paper actually names — all thirteen worked examples,
//! accepted and rejected inserts, deletes of present and absent tuples,
//! frames of mixed sizes — plus one 10^5-tuple bulk family.

use idr_core::exec::Guard;
use idr_core::serving::BatchOp;
use idr_core::Engine;
use idr_relation::rng::SplitMix64;
use idr_relation::{DatabaseState, SymbolTable, Tuple};
use idr_workload::paper_examples;
use idr_workload::scale::{bulk_families, bulk_inserts};
use idr_workload::states::{generate, WorkloadConfig};

/// Sorted relation/tuple dump — `DatabaseState` has no `PartialEq`, and
/// order must not matter anyway.
fn dump(state: &DatabaseState) -> Vec<(usize, Tuple)> {
    let mut all: Vec<(usize, Tuple)> = state.iter_all().map(|(i, t)| (i, t.clone())).collect();
    all.sort();
    all
}

/// Cuts `ops` into deterministic frames of cycling sizes (1, 3, 2, 5,
/// 4, ...) and applies them through `apply_batch`; returns the
/// concatenated verdicts and the hub's final state + verdict.
fn apply_framed(
    engine: &Engine,
    state: &DatabaseState,
    ops: &[BatchOp],
    g: &Guard,
) -> (Vec<bool>, Vec<(usize, Tuple)>, bool) {
    let hub = engine.hub(state, g).expect("consistent base state");
    let writer = hub.write_handle();
    let mut verdicts = Vec::with_capacity(ops.len());
    let sizes = [1usize, 3, 2, 5, 4];
    let mut next = 0;
    let mut k = 0;
    while next < ops.len() {
        let sz = sizes[k % sizes.len()].min(ops.len() - next);
        k += 1;
        let group = &ops[next..next + sz];
        next += sz;
        verdicts.extend(writer.apply_batch(group, g).expect("batch within budget"));
    }
    let view = hub.read_view();
    let final_state = dump(view.state());
    let consistent = view.is_consistent();
    (verdicts, final_state, consistent)
}

/// The same ops one at a time.
fn apply_serial(
    engine: &Engine,
    state: &DatabaseState,
    ops: &[BatchOp],
    g: &Guard,
) -> (Vec<bool>, Vec<(usize, Tuple)>, bool) {
    let hub = engine.hub(state, g).expect("consistent base state");
    let writer = hub.write_handle();
    let verdicts: Vec<bool> = ops
        .iter()
        .map(|op| match op {
            BatchOp::Insert { rel, t } => writer.insert(*rel, t.clone(), g).expect("insert"),
            BatchOp::Delete { rel, t } => writer.delete(*rel, t, g).expect("delete"),
        })
        .collect();
    let view = hub.read_view();
    let final_state = dump(view.state());
    let consistent = view.is_consistent();
    (verdicts, final_state, consistent)
}

#[test]
fn batch_equals_per_op_on_every_paper_fixture() {
    let g = Guard::unlimited();
    for fixture in paper_examples() {
        let db = fixture.scheme;
        let mut sym = SymbolTable::new();
        // A consistent seeded state plus a mixed insert stream: fresh
        // entities (accepted) and corrupted cross-entity tuples (mostly
        // rejected).
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 12,
                fragment_pct: 60,
                inserts: 24,
                corrupt_pct: 40,
                seed: 0x9A7C4 ^ fixture.name.len() as u64,
            },
        );
        // Interleave deletes: every fourth op deletes an earlier insert's
        // tuple (present if that insert was accepted and not yet deleted,
        // absent otherwise) — both delete verdicts get exercised.
        let mut ops: Vec<BatchOp> = Vec::new();
        let mut rng = SplitMix64::new(0xDE1E7E);
        for (k, (i, t)) in w.inserts.iter().enumerate() {
            ops.push(BatchOp::Insert {
                rel: *i,
                t: t.clone(),
            });
            if k % 4 == 3 {
                let (j, tj) = &w.inserts[rng.gen_range(0, k + 1)];
                ops.push(BatchOp::Delete {
                    rel: *j,
                    t: tj.clone(),
                });
            }
        }
        let engine = Engine::new(db.clone());
        let batch = apply_framed(&engine, &w.state, &ops, &g);
        let serial = apply_serial(&engine, &w.state, &ops, &g);
        assert_eq!(
            batch.0, serial.0,
            "{}: batch verdicts != per-op verdicts",
            fixture.name
        );
        assert_eq!(
            batch.1, serial.1,
            "{}: batch final state != per-op final state",
            fixture.name
        );
        assert_eq!(batch.2, serial.2, "{}: consistency differs", fixture.name);
    }
}

#[test]
fn batch_equals_per_op_on_a_100k_tuple_family() {
    let g = Guard::unlimited();
    let (name, db) = bulk_families()
        .into_iter()
        .find(|(n, _)| *n == "block_chain(4,4)")
        .expect("family exists");
    let mut sym = SymbolTable::new();
    let ops: Vec<BatchOp> = bulk_inserts(&db, &mut sym, 100_000)
        .into_iter()
        .map(|(i, t)| BatchOp::Insert { rel: i, t })
        .collect();
    let engine = Engine::new(db.clone());
    let empty = DatabaseState::empty(&db);

    let hub = engine.hub(&empty, &g).expect("empty state");
    let batch_verdicts = hub
        .write_handle()
        .apply_batch(&ops, &g)
        .expect("bulk batch");
    assert!(
        batch_verdicts.iter().all(|&v| v),
        "{name}: bulk stream must be accepted wholesale"
    );

    let hub2 = engine.hub(&empty, &g).expect("empty state");
    let writer = hub2.write_handle();
    for op in &ops {
        let BatchOp::Insert { rel, t } = op else {
            unreachable!()
        };
        assert!(writer.insert(*rel, t.clone(), &g).expect("insert"));
    }

    assert_eq!(
        dump(hub.read_view().state()),
        dump(hub2.read_view().state()),
        "{name}: batch and per-op states diverge at 10^5 tuples"
    );
    assert!(hub.read_view().is_consistent());
}
