//! Differential tests: every specialised algorithm of the paper against
//! the generic chase oracle, over the synthetic families of
//! `idr-workload`.
//!
//! * Algorithm 1 (`KeRep::build`) decides consistency exactly like the
//!   chase, and its tuples are exactly the constant components of the
//!   chased state tableau's rows.
//! * Algorithms 2 and 5 decide the maintenance problem exactly like
//!   re-chasing the updated state, and (on split-free schemes) agree with
//!   each other.
//! * The Theorem 4.1 total-projection expressions compute exactly
//!   `πt_X(CHASE_F(T_r))`.
//! * Algorithm 6's verdict matches the definitional check
//!   (`is_ir_partition`) on its own partition.

use idr_core::maintain::{algorithm2, algorithm5, IrMaintainer, StateIndex};
use idr_core::query::ir_total_projection;
use idr_core::recognition::{is_ir_partition, recognize};
use idr_fd::KeyDeps;
use idr_relation::exec::{Guard, RetryPolicy};
use idr_relation::{AttrSet, DatabaseScheme, SymbolTable, Tuple};
use idr_workload::generators;
use idr_workload::states::{generate, WorkloadConfig};

fn families() -> Vec<(&'static str, DatabaseScheme)> {
    vec![
        ("chain6", generators::chain_scheme(6)),
        ("cycle5", generators::cycle_scheme(5)),
        ("split3", generators::split_scheme(3)),
        ("star4", generators::star_scheme(4)),
        ("blocks2x3", generators::block_chain_scheme(2, 3)),
        ("example4", idr_workload::fixtures::example4().scheme),
        ("example6", idr_workload::fixtures::example6().scheme),
        ("example11", idr_workload::fixtures::example11().scheme),
    ]
}

fn g() -> Guard {
    Guard::unlimited()
}

fn rp() -> RetryPolicy {
    RetryPolicy::none()
}

fn cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        entities: 30,
        fragment_pct: 55,
        inserts: 30,
        corrupt_pct: 40,
        seed,
    }
}

#[test]
fn algorithm1_matches_chase_consistency_and_tuples() {
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd)
            .accepted()
            .unwrap_or_else(|| panic!("{name} must be accepted"));
        for seed in 0..4u64 {
            let mut sym = SymbolTable::new();
            let w = generate(&db, &mut sym, cfg(seed));
            // The generated base state is consistent by construction;
            // both deciders must agree.
            assert!(
                idr_chase::is_consistent(&db, &w.state, kd.full(), &g()).unwrap(),
                "{name}/{seed}: oracle rejects the generated state"
            );
            assert!(
                IrMaintainer::state_consistent(&db, &ir, &w.state, &g()).unwrap(),
                "{name}/{seed}: Algorithm 1 rejects a consistent state"
            );
            // Per-block rep tuples = constant components of chased rows.
            let rep_oracle =
                idr_chase::representative_instance(&db, &w.state, kd.full(), &g())
                .unwrap()
                .expect("consistent state has a representative instance");
            let mut oracle_tuples: Vec<Tuple> = rep_oracle
                .tableau
                .rows()
                .iter()
                .map(|r| r.const_tuple())
                .collect();
            oracle_tuples.sort();
            oracle_tuples.dedup();
            let m = IrMaintainer::new(&db, &ir, &w.state, &g()).unwrap();
            let mut fast_tuples: Vec<Tuple> =
                m.reps().iter().flat_map(|r| r.iter().cloned()).collect();
            fast_tuples.sort();
            fast_tuples.dedup();
            if ir.len() == 1 {
                // Key-equivalent scheme: Algorithm 1's merged tuples are
                // exactly the constant components of the chased rows
                // (Corollary 3.1(a)).
                assert_eq!(
                    fast_tuples, oracle_tuples,
                    "{name}/{seed}: representative instances differ"
                );
            } else {
                // Multi-block scheme: the full chase additionally merges
                // *across* blocks (Lemma 4.2 chases the induced state on
                // D further), so each block-rep tuple must appear as a
                // restriction of some chased row — not necessarily as a
                // whole row.
                for t in &fast_tuples {
                    assert!(
                        oracle_tuples
                            .iter()
                            .any(|o| t.attrs().is_subset(o.attrs())
                                && o.project(t.attrs()) == *t),
                        "{name}/{seed}: rep tuple {t:?} missing from the chase"
                    );
                }
            }
        }
    }
}

#[test]
fn algorithm2_matches_chase_on_inserts() {
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        for seed in 0..4u64 {
            let mut sym = SymbolTable::new();
            let w = generate(&db, &mut sym, cfg(seed));
            let maintainer = IrMaintainer::new(&db, &ir, &w.state, &g()).unwrap();
            for (i, t) in &w.inserts {
                let b = ir.block_of[*i];
                let (outcome, _) =
                    algorithm2(&db, &maintainer.reps()[b], *i, t, &g(), &rp()).unwrap();
                let mut updated = w.state.clone();
                updated.insert(*i, t.clone()).unwrap();
                let oracle = idr_chase::is_consistent(&db, &updated, kd.full(), &g()).unwrap();
                assert_eq!(
                    outcome.is_consistent(),
                    oracle,
                    "{name}/{seed}: Algorithm 2 disagrees with the chase on {t:?} into {i}"
                );
            }
        }
    }
}

#[test]
fn algorithm5_matches_chase_on_split_free_schemes() {
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let split_free = ir
            .partition
            .iter()
            .all(|b| idr_core::split::is_split_free(&db, &kd, b));
        if !split_free {
            continue;
        }
        for seed in 0..4u64 {
            let mut sym = SymbolTable::new();
            let w = generate(&db, &mut sym, cfg(seed));
            for (i, t) in &w.inserts {
                let b = ir.block_of[*i];
                let idx = StateIndex::build(&db, &ir.partition[b], &w.state).unwrap();
                let (outcome, _) = algorithm5(&db, &idx, *i, t, &g(), &rp()).unwrap();
                let mut updated = w.state.clone();
                updated.insert(*i, t.clone()).unwrap();
                let oracle = idr_chase::is_consistent(&db, &updated, kd.full(), &g()).unwrap();
                assert_eq!(
                    outcome.is_consistent(),
                    oracle,
                    "{name}/{seed}: Algorithm 5 disagrees with the chase on {t:?} into {i}"
                );
            }
        }
    }
}

#[test]
fn total_projection_expressions_match_chase() {
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        // Query targets: every scheme, every pair-of-schemes union, and a
        // few cross-block attribute pairs.
        let mut targets: Vec<AttrSet> = db.schemes().iter().map(|s| s.attrs()).collect();
        for i in 0..db.len().min(4) {
            for j in (i + 1)..db.len().min(4) {
                targets.push(db.scheme(i).attrs() | db.scheme(j).attrs());
            }
        }
        let attrs: Vec<_> = db.universe().iter().collect();
        if attrs.len() >= 2 {
            targets.push(AttrSet::from_iter([attrs[0], attrs[attrs.len() - 1]]));
        }
        let mut sym = SymbolTable::new();
        let w = generate(&db, &mut sym, cfg(7));
        for x in targets {
            let fast = ir_total_projection(&db, &kd, &ir, &w.state, x, &g()).unwrap();
            let oracle = idr_chase::total_projection(&db, &w.state, kd.full(), x, &g())
                .unwrap()
                .expect("consistent state");
            assert_eq!(
                fast.sorted_tuples(),
                oracle,
                "{name}: [X] differs for X = {}",
                db.universe().render(x)
            );
        }
    }
}

#[test]
fn recognition_verdicts_are_definitionally_sound() {
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert!(
            is_ir_partition(&db, &kd, &ir.partition),
            "{name}: accepted partition fails the definition"
        );
    }
    // And a rejected scheme: no partition the algorithm could have chosen
    // works — spot-check the KEP partition and the all-singletons
    // partition.
    let db = generators::example2_scheme();
    let kd = KeyDeps::of(&db);
    assert!(recognize(&db, &kd).accepted().is_none());
    let singletons: Vec<Vec<usize>> = (0..db.len()).map(|i| vec![i]).collect();
    assert!(!is_ir_partition(&db, &kd, &singletons));
}

#[test]
fn maintainers_stay_in_sync_over_insert_streams() {
    // Apply a long stream of inserts through IrMaintainer; after each
    // accepted insert the maintained representative instance must equal
    // the from-scratch rebuild.
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let w = generate(&db, &mut sym, cfg(11));
        let mut maintainer = IrMaintainer::new(&db, &ir, &w.state, &g()).unwrap();
        let mut applied = w.state.clone();
        for (i, t) in &w.inserts {
            let (outcome, _) = maintainer.insert(*i, t.clone(), &g(), &rp()).unwrap();
            if outcome.is_consistent() {
                applied.insert(*i, t.clone()).unwrap();
            }
        }
        let rebuilt = IrMaintainer::new(&db, &ir, &applied, &g()).unwrap();
        let collect = |m: &IrMaintainer| {
            let mut v: Vec<Tuple> = m.reps().iter().flat_map(|r| r.iter().cloned()).collect();
            v.sort();
            v
        };
        assert_eq!(
            collect(&maintainer),
            collect(&rebuilt),
            "{name}: incremental and rebuilt representative instances differ"
        );
    }
}

#[test]
fn ctm_maintainer_agrees_with_ir_maintainer_on_split_free_schemes() {
    use idr_core::maintain::CtmMaintainer;
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let split_free = ir
            .partition
            .iter()
            .all(|b| idr_core::split::is_split_free(&db, &kd, b));
        if !split_free {
            continue;
        }
        let mut sym = SymbolTable::new();
        let w = generate(&db, &mut sym, cfg(13));
        let mut a2 = IrMaintainer::new(&db, &ir, &w.state, &g()).unwrap();
        let mut a5 = CtmMaintainer::new(&db, &ir, &w.state, &g()).unwrap();
        for (i, t) in &w.inserts {
            let v2 = a2.insert(*i, t.clone(), &g(), &rp()).unwrap().0.is_consistent();
            let v5 = a5.insert(*i, t.clone(), &g(), &rp()).unwrap().0.is_consistent();
            assert_eq!(v2, v5, "{name}: Algorithms 2 and 5 disagree on {t:?}");
        }
    }
}

#[test]
fn rep_based_projection_matches_expression_and_chase() {
    // The live-system query path (joins over maintained reps) agrees with
    // the compiled Theorem 4.1 expression and the chase — including after
    // a stream of maintained inserts.
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let w = generate(&db, &mut sym, cfg(17));
        let mut m = idr_core::maintain::IrMaintainer::new(&db, &ir, &w.state, &g()).unwrap();
        let mut applied = w.state.clone();
        for (i, t) in &w.inserts {
            if m.insert(*i, t.clone(), &g(), &rp()).unwrap().0.is_consistent() {
                applied.insert(*i, t.clone()).unwrap();
            }
        }
        let mut targets: Vec<AttrSet> = db.schemes().iter().take(3).map(|s| s.attrs()).collect();
        let attrs: Vec<_> = db.universe().iter().collect();
        targets.push(AttrSet::from_iter([attrs[0], attrs[attrs.len() - 1]]));
        for x in targets {
            let via_rep = m.total_projection(&kd, x, &g()).unwrap();
            let via_expr = ir_total_projection(&db, &kd, &ir, &applied, x, &g())
                .unwrap()
                .sorted_tuples();
            let via_chase = idr_chase::total_projection(&db, &applied, kd.full(), x, &g())
                .unwrap()
                .expect("consistent state");
            assert_eq!(via_rep, via_chase, "{name}: rep-based [X] differs from chase");
            assert_eq!(via_expr, via_chase, "{name}: expression [X] differs from chase");
        }
    }
}

#[test]
fn total_projections_are_monotone_under_consistent_inserts() {
    // The weak-instance semantics is monotone: an accepted insert can only
    // add derivable facts, never retract them.
    for (name, db) in families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let w = generate(&db, &mut sym, cfg(23));
        let mut m = idr_core::maintain::IrMaintainer::new(&db, &ir, &w.state, &g()).unwrap();
        let x = db.universe().all();
        let mut applied = w.state.clone();
        let mut before = idr_chase::total_projection(&db, &applied, kd.full(), x, &g())
        .unwrap()
        .expect("consistent state");
        for (i, t) in w.inserts.iter().take(10) {
            if m.insert(*i, t.clone(), &g(), &rp()).unwrap().0.is_consistent() {
                applied.insert(*i, t.clone()).unwrap();
                let after =
                    idr_chase::total_projection(&db, &applied, kd.full(), x, &g())
                        .unwrap()
                        .expect("consistent state");
                for old in &before {
                    assert!(
                        after.contains(old),
                        "{name}: accepted insert retracted a derived fact"
                    );
                }
                before = after;
            }
        }
    }
}
