//! β-acyclicity — the degree between α and γ in Fagin's hierarchy.
//!
//! Not used by the paper directly, but implementing it completes the
//! hierarchy (γ-acyclic ⇒ β-acyclic ⇒ α-acyclic) and gives the property
//! tests a second sandwich to squeeze the γ implementation with.
//!
//! Two deciders, cross-validated:
//!
//! * [`is_beta_acyclic`] — every nonempty subset of the edges is
//!   α-acyclic (Fagin's characterisation); exponential in the number of
//!   edges, guarded, fine for scheme-sized hypergraphs.
//! * [`find_beta_cycle`] — direct search for a β-cycle: like a γ-cycle but
//!   with the purity condition imposed on *every* connecting node
//!   (`xi ∉ Sj` for all cycle edges other than `Si`, `Si+1`, for all `i`).

use idr_relation::{AttrSet, Attribute};

use crate::gyo::is_alpha_acyclic;
use crate::hypergraph::Hypergraph;

/// Decides β-acyclicity by the every-subset-α-acyclic characterisation.
///
/// # Panics
///
/// Panics on hypergraphs with more than 16 edges (2^n subsets).
pub fn is_beta_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<AttrSet> = h.edges().to_vec();
    edges.sort();
    edges.dedup();
    let n = edges.len();
    assert!(n <= 16, "is_beta_acyclic: too many edges ({n})");
    for mask in 1u32..(1 << n) {
        let subset: Vec<AttrSet> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| edges[i])
            .collect();
        if !is_alpha_acyclic(&Hypergraph::new(subset)) {
            return false;
        }
    }
    true
}

/// Searches for a β-cycle: `(S1, x1, …, Sm, xm, S1)`, `m ≥ 3`, distinct
/// edges and nodes, `xi ∈ Si ∩ Si+1`, and **every** `xi` in no other edge
/// of the cycle. Returns the edge indices and nodes, or `None`.
pub fn find_beta_cycle(h: &Hypergraph) -> Option<(Vec<usize>, Vec<Attribute>)> {
    let edges = h.edges();
    assert!(edges.len() <= 16, "β-cycle oracle: too many edges");

    fn purity_ok(edges: &[AttrSet], cyc: &[usize], nodes: &[Attribute]) -> bool {
        let m = cyc.len();
        for (i, &x) in nodes.iter().enumerate() {
            for (pos, &e) in cyc.iter().enumerate() {
                let allowed = pos == i || pos == (i + 1) % m;
                if !allowed && edges[e].contains(x) {
                    return false;
                }
            }
        }
        true
    }

    fn dfs(
        edges: &[AttrSet],
        start: usize,
        path_edges: &mut Vec<usize>,
        path_nodes: &mut Vec<Attribute>,
        used_edges: u32,
        used_nodes: &mut AttrSet,
    ) -> Option<(Vec<usize>, Vec<Attribute>)> {
        let last = *path_edges.last().unwrap();
        if path_edges.len() >= 3 {
            let closing = edges[last] & edges[start];
            for x in closing.iter() {
                if used_nodes.contains(x) {
                    continue;
                }
                let mut nodes = path_nodes.clone();
                nodes.push(x);
                if purity_ok(edges, path_edges, &nodes) {
                    return Some((path_edges.clone(), nodes));
                }
            }
        }
        for next in 0..edges.len() {
            if used_edges & (1 << next) != 0 {
                continue;
            }
            if (0..edges.len()).any(|k| used_edges & (1 << k) != 0 && edges[k] == edges[next]) {
                continue;
            }
            let common = edges[last] & edges[next];
            for x in common.iter() {
                if used_nodes.contains(x) {
                    continue;
                }
                path_edges.push(next);
                path_nodes.push(x);
                used_nodes.insert(x);
                if let Some(c) = dfs(
                    edges,
                    start,
                    path_edges,
                    path_nodes,
                    used_edges | (1 << next),
                    used_nodes,
                ) {
                    return Some(c);
                }
                used_nodes.remove(x);
                path_nodes.pop();
                path_edges.pop();
            }
        }
        None
    }

    for start in 0..edges.len() {
        let mut pe = vec![start];
        let mut pn = Vec::new();
        let mut un = AttrSet::empty();
        if let Some(c) = dfs(edges, start, &mut pe, &mut pn, 1 << start, &mut un) {
            return Some(c);
        }
    }
    None
}

/// Oracle variant: β-acyclic iff no β-cycle.
pub fn is_beta_acyclic_oracle(h: &Hypergraph) -> bool {
    find_beta_cycle(h).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    fn h(u: &Universe, edges: &[&str]) -> Hypergraph {
        Hypergraph::new(edges.iter().map(|e| u.set_of(e)).collect())
    }

    #[test]
    fn chain_is_beta_acyclic() {
        let u = Universe::of_chars("ABCD");
        let g = h(&u, &["AB", "BC", "CD"]);
        assert!(is_beta_acyclic(&g));
        assert!(is_beta_acyclic_oracle(&g));
    }

    #[test]
    fn triangle_is_beta_cyclic() {
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["AB", "BC", "AC"]);
        assert!(!is_beta_acyclic(&g));
        assert!(!is_beta_acyclic_oracle(&g));
    }

    #[test]
    fn the_classic_beta_but_not_gamma_example() {
        // {ABC, AB, BC} is β-acyclic but not γ-acyclic.
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["ABC", "AB", "BC"]);
        assert!(is_beta_acyclic(&g));
        assert!(is_beta_acyclic_oracle(&g));
        assert!(!crate::gamma::is_gamma_acyclic(&g));
    }

    #[test]
    fn alpha_but_not_beta_example() {
        // The triangle plus its closure edge is α-acyclic but not
        // β-acyclic (the triangle subset is α-cyclic).
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["AB", "BC", "AC", "ABC"]);
        assert!(crate::gyo::is_alpha_acyclic(&g));
        assert!(!is_beta_acyclic(&g));
        assert!(!is_beta_acyclic_oracle(&g));
    }
}
