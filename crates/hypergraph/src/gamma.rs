//! γ-acyclicity (§2.4).
//!
//! Two independent deciders are provided:
//!
//! * [`is_gamma_acyclic`] — the production test: a D'Atri–Moscarini-style
//!   reduction that repeatedly deletes (a) nodes in exactly one edge,
//!   (b) nodes equivalent to another node (same edge membership),
//!   (c) single-node edges, (d) duplicate/empty edges. The hypergraph is
//!   γ-acyclic iff it reduces to the empty hypergraph.
//! * [`find_gamma_cycle`] — a direct exponential search for a Fagin
//!   γ-cycle `(S1, x1, S2, x2, …, Sm, xm, S1)`, `m ≥ 3`, with distinct
//!   edges and nodes, `xi ∈ Si ∩ Si+1`, and every `xi` (`i < m`) in no
//!   other edge of the cycle. Used as the oracle in property tests.
//!
//! On tiny instances both are additionally validated against the u.m.c.
//! characterisation of Theorem 2.1 (see `tests/prop_hypergraph.rs`).

use idr_relation::{AttrSet, Attribute};

use crate::hypergraph::Hypergraph;

/// Decides γ-acyclicity by reduction.
pub fn is_gamma_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<AttrSet> = h.edges().to_vec();
    loop {
        // (d) drop empty and duplicate edges.
        edges.retain(|e| !e.is_empty());
        edges.sort();
        edges.dedup();
        if edges.is_empty() {
            return true;
        }
        let mut changed = false;

        // Node → membership signature over current edges.
        let nodes = edges.iter().fold(AttrSet::empty(), |a, &e| a | e);
        let signature = |x: Attribute| -> u64 {
            let mut sig = 0u64;
            for (i, e) in edges.iter().enumerate() {
                if e.contains(x) {
                    sig |= 1u64 << (i % 64);
                }
            }
            sig
        };
        let count = |x: Attribute| edges.iter().filter(|e| e.contains(x)).count();

        let mut to_remove = AttrSet::empty();
        let node_list: Vec<Attribute> = nodes.iter().collect();
        #[allow(clippy::needless_range_loop)]
        for (i, &x) in node_list.iter().enumerate() {
            // (a) node in exactly one edge.
            if count(x) == 1 {
                to_remove.insert(x);
                continue;
            }
            // (b) node equivalent to an earlier surviving node. Using the
            // 64-bit signature as a prefilter, then exact membership check
            // (exact check needed when > 64 edges fold into one word).
            for &y in &node_list[..i] {
                if to_remove.contains(y) {
                    continue;
                }
                if signature(x) == signature(y)
                    && edges.iter().all(|e| e.contains(x) == e.contains(y))
                {
                    to_remove.insert(x);
                    break;
                }
            }
        }
        if !to_remove.is_empty() {
            for e in edges.iter_mut() {
                *e -= to_remove;
            }
            changed = true;
        }

        // (c) single-node edges vanish.
        let before = edges.len();
        edges.retain(|e| e.len() > 1);
        changed |= edges.len() != before;

        if !changed {
            // Irreducible and nonempty ⇒ cyclic.
            return false;
        }
    }
}

/// A γ-cycle witness: alternating edges (by index into the input
/// hypergraph) and connecting nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GammaCycle {
    /// Edge indices `S1, …, Sm`.
    pub edges: Vec<usize>,
    /// Connecting nodes `x1, …, xm` with `xi ∈ Si ∩ Si+1` (cyclically).
    pub nodes: Vec<Attribute>,
}

/// Searches for a Fagin γ-cycle. Exponential; guarded to small hypergraphs
/// (≤ 16 edges) since it exists to validate [`is_gamma_acyclic`].
pub fn find_gamma_cycle(h: &Hypergraph) -> Option<GammaCycle> {
    let edges = h.edges();
    assert!(edges.len() <= 16, "γ-cycle oracle: too many edges");
    let n = edges.len();

    // DFS over simple edge paths with chosen distinct connecting nodes;
    // on closing a cycle of length ≥ 3, verify the purity constraint.
    fn dfs(
        edges: &[AttrSet],
        start: usize,
        path_edges: &mut Vec<usize>,
        path_nodes: &mut Vec<Attribute>,
        used_edges: u32,
        used_nodes: &mut AttrSet,
    ) -> Option<GammaCycle> {
        let last = *path_edges.last().unwrap();
        // Try to close the cycle.
        if path_edges.len() >= 3 {
            let closing = edges[last] & edges[start];
            for x in closing.iter() {
                if used_nodes.contains(x) {
                    continue;
                }
                let mut nodes = path_nodes.clone();
                nodes.push(x);
                if purity_ok(edges, path_edges, &nodes) {
                    return Some(GammaCycle {
                        edges: path_edges.clone(),
                        nodes,
                    });
                }
            }
        }
        // Extend the path. Edges must be distinct *as sets*: a duplicate
        // entry is the same hypergraph edge and cannot reappear.
        for next in 0..edges.len() {
            if used_edges & (1 << next) != 0 {
                continue;
            }
            if (0..edges.len())
                .any(|k| used_edges & (1 << k) != 0 && edges[k] == edges[next])
            {
                continue;
            }
            let common = edges[last] & edges[next];
            for x in common.iter() {
                if used_nodes.contains(x) {
                    continue;
                }
                path_edges.push(next);
                path_nodes.push(x);
                used_nodes.insert(x);
                if let Some(c) = dfs(
                    edges,
                    start,
                    path_edges,
                    path_nodes,
                    used_edges | (1 << next),
                    used_nodes,
                ) {
                    return Some(c);
                }
                used_nodes.remove(x);
                path_nodes.pop();
                path_edges.pop();
            }
        }
        None
    }

    /// `xi` (for `i < m`) may belong to no cycle edge other than `Si` and
    /// `Si+1`; the last node `xm` is exempt.
    fn purity_ok(edges: &[AttrSet], cyc_edges: &[usize], nodes: &[Attribute]) -> bool {
        let m = cyc_edges.len();
        for (i, &x) in nodes.iter().enumerate().take(m - 1) {
            for (pos, &e) in cyc_edges.iter().enumerate() {
                let allowed = pos == i || pos == (i + 1) % m;
                if !allowed && edges[e].contains(x) {
                    return false;
                }
            }
        }
        true
    }

    for start in 0..n {
        let mut path_edges = vec![start];
        let mut path_nodes = Vec::new();
        let mut used_nodes = AttrSet::empty();
        if let Some(c) = dfs(
            edges,
            start,
            &mut path_edges,
            &mut path_nodes,
            1 << start,
            &mut used_nodes,
        ) {
            return Some(c);
        }
    }
    None
}

/// Oracle variant of the γ-acyclicity decision: no γ-cycle exists.
pub fn is_gamma_acyclic_oracle(h: &Hypergraph) -> bool {
    find_gamma_cycle(h).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    fn h(u: &Universe, edges: &[&str]) -> Hypergraph {
        Hypergraph::new(edges.iter().map(|e| u.set_of(e)).collect())
    }

    #[test]
    fn chain_is_gamma_acyclic() {
        let u = Universe::of_chars("ABCDE");
        let g = h(&u, &["AB", "BC", "CD", "DE"]);
        assert!(is_gamma_acyclic(&g));
        assert!(is_gamma_acyclic_oracle(&g));
    }

    #[test]
    fn triangle_is_cyclic() {
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["AB", "BC", "AC"]);
        assert!(!is_gamma_acyclic(&g));
        let cycle = find_gamma_cycle(&g).unwrap();
        assert_eq!(cycle.edges.len(), 3);
    }

    #[test]
    fn classic_beta_but_not_gamma() {
        // {ABC, AB, BC} is β-acyclic but not γ-acyclic.
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["ABC", "AB", "BC"]);
        assert!(!is_gamma_acyclic(&g));
        assert!(!is_gamma_acyclic_oracle(&g));
    }

    #[test]
    fn edge_plus_subedge_is_gamma_acyclic() {
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["ABC", "AB"]);
        assert!(is_gamma_acyclic(&g));
        assert!(is_gamma_acyclic_oracle(&g));
    }

    #[test]
    fn star_is_gamma_acyclic() {
        let u = Universe::of_chars("ABCD");
        let g = h(&u, &["AB", "AC", "AD"]);
        assert!(is_gamma_acyclic(&g));
        assert!(is_gamma_acyclic_oracle(&g));
    }

    #[test]
    fn example1_scheme_r_is_not_gamma_acyclic() {
        // Example 1: R = {HRC, HTR, HTC, CSG, HSR} is stated not γ-acyclic.
        let u = Universe::of_chars("CTHRSG");
        let g = h(&u, &["HRC", "HTR", "HTC", "CSG", "HSR"]);
        assert!(!is_gamma_acyclic(&g));
        assert!(!is_gamma_acyclic_oracle(&g));
    }

    #[test]
    fn empty_and_single_edge() {
        let u = Universe::of_chars("AB");
        assert!(is_gamma_acyclic(&Hypergraph::new(vec![])));
        assert!(is_gamma_acyclic(&h(&u, &["AB"])));
    }

    #[test]
    fn duplicate_edges_do_not_create_cycles() {
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["AB", "AB", "BC"]);
        assert!(is_gamma_acyclic(&g));
        assert!(is_gamma_acyclic_oracle(&g));
    }
}
