//! Hypergraph substrate (§2.4 of Chan & Hernández, PODS 1988).
//!
//! A database scheme `R` induces the hypergraph `H_R = <U, R>`; the paper
//! compares its new scheme class against the γ-acyclic cover-embedding
//! BCNF schemes of \[CH1], so the reproduction needs:
//!
//! * [`Hypergraph`] — nodes ([`idr_relation::AttrSet`] over the universe)
//!   and edges, with paths and connectivity.
//! * [`bachman`] — the Bachman closure of a family of sets and *unique
//!   minimal connections* (u.m.c.), the objects of Theorem 2.1.
//! * [`gamma`] — γ-acyclicity, via the D'Atri–Moscarini-style reduction
//!   (fast path) and a direct search for Fagin γ-cycles (oracle); the two
//!   are cross-validated by property tests, and on tiny instances both are
//!   checked against the u.m.c. characterisation of Theorem 2.1.
//! * [`beta`] — β-acyclicity (between α and γ), completing Fagin's
//!   hierarchy for the cross-validation sandwich.
//! * [`gyo`] — GYO α-acyclicity, kept as a baseline and sanity check
//!   (γ-acyclic ⇒ β-acyclic ⇒ α-acyclic).


#![warn(missing_docs)]
pub mod bachman;
pub mod beta;
pub mod gamma;
pub mod gyo;
mod hypergraph;

pub use hypergraph::Hypergraph;
