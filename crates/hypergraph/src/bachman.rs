//! Bachman closure and unique minimal connections (§2.4, Theorem 2.1).
//!
//! These procedures are inherently exponential and are used only as
//! *oracles* on small instances: the property tests cross-validate the
//! fast γ-acyclicity test against the u.m.c. characterisation of
//! Theorem 2.1 (`R` γ-acyclic ⟺ `R` has a u.m.c. among every `X ⊆ U`).

use std::collections::HashSet;

use idr_relation::AttrSet;

use crate::hypergraph::Hypergraph;

/// Size guard for the exponential u.m.c. oracle.
pub const MAX_BACHMAN: usize = 24;

/// `Bachman(E)`: the closure of the family under pairwise intersection
/// (§2.4). Empty intersections are dropped — an empty member can neither
/// cover anything nor lie on a path, so it never participates in a
/// connection.
pub fn bachman_closure(edges: &[AttrSet]) -> Vec<AttrSet> {
    let mut members: HashSet<AttrSet> = edges
        .iter()
        .copied()
        .filter(|e| !e.is_empty())
        .collect();
    loop {
        let snapshot: Vec<AttrSet> = members.iter().copied().collect();
        let before = members.len();
        for i in 0..snapshot.len() {
            for j in (i + 1)..snapshot.len() {
                let x = snapshot[i] & snapshot[j];
                if !x.is_empty() {
                    members.insert(x);
                }
            }
        }
        if members.len() == before {
            break;
        }
    }
    let mut out: Vec<AttrSet> = members.into_iter().collect();
    out.sort();
    out
}

/// Whether `v` elementwise-dominates into `w`: there is an injective
/// assignment of each `Vj ∈ v` to some `W ∈ w` with `W ⊇ Vj` (the subset
/// `{W_{i1},…,W_{im}}` of the u.m.c. definition). Small bipartite matching
/// by augmenting paths.
fn dominated_by(v: &[AttrSet], w: &[AttrSet]) -> bool {
    let mut match_w: Vec<Option<usize>> = vec![None; w.len()];

    fn try_assign(
        vi: usize,
        v: &[AttrSet],
        w: &[AttrSet],
        match_w: &mut Vec<Option<usize>>,
        visited: &mut Vec<bool>,
    ) -> bool {
        for (wi, &we) in w.iter().enumerate() {
            if visited[wi] || !v[vi].is_subset(we) {
                continue;
            }
            visited[wi] = true;
            let free = match match_w[wi] {
                None => true,
                Some(prev) => try_assign(prev, v, w, match_w, visited),
            };
            if free {
                match_w[wi] = Some(vi);
                return true;
            }
        }
        false
    }

    for vi in 0..v.len() {
        let mut visited = vec![false; w.len()];
        if !try_assign(vi, v, w, &mut match_w, &mut visited) {
            return false;
        }
    }
    true
}

/// Enumerates the inclusion-minimal connected subsets of `members` whose
/// union covers `x`.
fn minimal_connected_covers(members: &[AttrSet], x: AttrSet) -> Vec<Vec<AttrSet>> {
    assert!(
        members.len() <= MAX_BACHMAN,
        "u.m.c. oracle: Bachman closure too large ({})",
        members.len()
    );
    let n = members.len();
    let mut covers: Vec<u32> = Vec::new();
    for mask in 1u32..(1 << n) {
        let subset: Vec<AttrSet> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| members[i])
            .collect();
        let union = subset.iter().fold(AttrSet::empty(), |a, &b| a | b);
        if !x.is_subset(union) {
            continue;
        }
        if !Hypergraph::family_connected(&subset) {
            continue;
        }
        covers.push(mask);
    }
    // Keep inclusion-minimal masks only.
    let minimal: Vec<u32> = covers
        .iter()
        .copied()
        .filter(|&m| {
            !covers
                .iter()
                .any(|&m2| m2 != m && m2 & m == m2)
        })
        .collect();
    minimal
        .into_iter()
        .map(|mask| {
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| members[i])
                .collect()
        })
        .collect()
}

/// Finds a *unique minimal connection* (u.m.c.) among `X` for the
/// hypergraph, if one exists (§2.4).
///
/// A connected `V ⊆ Bachman(R)` covering `X` is a u.m.c. when every
/// connected covering subset `W` of `Bachman(R)` contains elements
/// dominating `V` elementwise. Quantification over *all* connected covers
/// reduces to inclusion-minimal ones (any cover contains a minimal
/// connected covering subset, and domination into a subset lifts to the
/// superset).
pub fn unique_minimal_connection(h: &Hypergraph, x: AttrSet) -> Option<Vec<AttrSet>> {
    if x.is_empty() {
        return Some(Vec::new());
    }
    if !x.is_subset(h.nodes()) {
        return None;
    }
    let members = bachman_closure(h.edges());
    let covers = minimal_connected_covers(&members, x);
    covers
        .iter()
        .find(|v| covers.iter().all(|w| dominated_by(v, w)))
        .cloned()
}

/// Theorem 2.1 (stated in \[F3]\[Y2], proven in \[BBSK]): a connected database
/// scheme is γ-acyclic iff it has a u.m.c. among `X` for *every* `X ⊆ U`.
/// This oracle checks the right-hand side by brute force; tests compare it
/// against [`crate::gamma`].
pub fn has_umc_for_all_subsets(h: &Hypergraph) -> bool {
    let nodes: Vec<_> = h.nodes().iter().collect();
    assert!(nodes.len() <= 12, "u.m.c. oracle: universe too large");
    h.nodes()
        .subsets()
        .filter(|x| !x.is_empty())
        .all(|x| unique_minimal_connection(h, x).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    fn h(u: &Universe, edges: &[&str]) -> Hypergraph {
        Hypergraph::new(edges.iter().map(|e| u.set_of(e)).collect())
    }

    #[test]
    fn bachman_adds_intersections() {
        let u = Universe::of_chars("ABC");
        let m = bachman_closure(&[u.set_of("AB"), u.set_of("BC")]);
        assert!(m.contains(&u.set_of("B")));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn bachman_drops_empty_intersections() {
        let u = Universe::of_chars("ABCD");
        let m = bachman_closure(&[u.set_of("AB"), u.set_of("CD")]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn umc_on_chain() {
        let u = Universe::of_chars("ABCD");
        let g = h(&u, &["AB", "BC", "CD"]);
        // The u.m.c. among {A, D} is the whole chain.
        let v = unique_minimal_connection(&g, u.set_of("AD")).unwrap();
        assert_eq!(v.len(), 3);
        // Among {B} it is just {B} (the intersection member).
        let v = unique_minimal_connection(&g, u.set_of("B")).unwrap();
        assert_eq!(v, vec![u.set_of("B")]);
    }

    #[test]
    fn no_umc_on_triangle() {
        // The triangle has two incomparable minimal connections among AB.
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["AB", "BC", "AC"]);
        assert!(unique_minimal_connection(&g, u.set_of("ABC")).is_none() ||
                unique_minimal_connection(&g, u.set_of("AB")).is_none());
        assert!(!has_umc_for_all_subsets(&g));
    }

    #[test]
    fn umc_for_all_subsets_on_acyclic_shapes() {
        let u = Universe::of_chars("ABCD");
        assert!(has_umc_for_all_subsets(&h(&u, &["AB", "BC", "CD"])));
        assert!(has_umc_for_all_subsets(&h(&u, &["ABC", "ABD"])));
        assert!(!has_umc_for_all_subsets(&h(&u, &["AB", "BC", "ABC"])));
    }

    #[test]
    fn domination_matching_needs_injectivity() {
        let u = Universe::of_chars("ABC");
        // v = [A, B] cannot be dominated by w = [AB] (one element serving
        // both).
        assert!(!dominated_by(
            &[u.set_of("A"), u.set_of("B")],
            &[u.set_of("AB")]
        ));
        assert!(dominated_by(
            &[u.set_of("A"), u.set_of("B")],
            &[u.set_of("AB"), u.set_of("B")]
        ));
    }
}
