//! GYO reduction: α-acyclicity. Kept as a baseline (γ-acyclic ⇒ α-acyclic,
//! so this gives a cheap sanity cross-check) and because the acyclicity
//! literature the paper builds on (\[BFMY]\[F3]) is formulated around it.

use idr_relation::AttrSet;

use crate::hypergraph::Hypergraph;

/// Decides α-acyclicity by the Graham–Yu–Özsoyoğlu reduction: repeatedly
/// (1) delete nodes that appear in exactly one edge ("ear tips"),
/// (2) delete edges contained in other edges. The hypergraph is α-acyclic
/// iff the reduction empties it.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<AttrSet> = h.edges().to_vec();
    loop {
        edges.retain(|e| !e.is_empty());
        if edges.is_empty() {
            return true;
        }
        let mut changed = false;

        // (2) remove edges contained in another edge (including
        // duplicates, keeping one copy).
        let snapshot = edges.clone();
        let mut kept: Vec<AttrSet> = Vec::with_capacity(edges.len());
        for (i, &e) in snapshot.iter().enumerate() {
            let contained = snapshot.iter().enumerate().any(|(j, &f)| {
                j != i && (e.is_proper_subset(f) || (e == f && j < i))
            });
            if contained {
                changed = true;
            } else {
                kept.push(e);
            }
        }
        edges = kept;

        // (1) remove nodes appearing in exactly one edge.
        let nodes = edges.iter().fold(AttrSet::empty(), |a, &e| a | e);
        let mut lonely = AttrSet::empty();
        for x in nodes.iter() {
            if edges.iter().filter(|e| e.contains(x)).count() == 1 {
                lonely.insert(x);
            }
        }
        if !lonely.is_empty() {
            for e in edges.iter_mut() {
                *e -= lonely;
            }
            changed = true;
        }

        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    fn h(u: &Universe, edges: &[&str]) -> Hypergraph {
        Hypergraph::new(edges.iter().map(|e| u.set_of(e)).collect())
    }

    #[test]
    fn chain_is_alpha_acyclic() {
        let u = Universe::of_chars("ABCD");
        assert!(is_alpha_acyclic(&h(&u, &["AB", "BC", "CD"])));
    }

    #[test]
    fn triangle_is_alpha_cyclic() {
        let u = Universe::of_chars("ABC");
        assert!(!is_alpha_acyclic(&h(&u, &["AB", "BC", "AC"])));
    }

    #[test]
    fn triangle_with_big_edge_is_alpha_acyclic_but_not_gamma() {
        let u = Universe::of_chars("ABC");
        let g = h(&u, &["AB", "BC", "AC", "ABC"]);
        assert!(is_alpha_acyclic(&g));
        assert!(!crate::gamma::is_gamma_acyclic(&g));
    }

    #[test]
    fn example3_not_even_alpha_acyclic() {
        // Example 3's remark: R = {AB, BC, AC} "is not even α-acyclic".
        let u = Universe::of_chars("ABC");
        assert!(!is_alpha_acyclic(&h(&u, &["AB", "BC", "AC"])));
    }

    #[test]
    fn empty_is_acyclic() {
        assert!(is_alpha_acyclic(&Hypergraph::new(vec![])));
    }
}
