use idr_relation::{AttrSet, DatabaseScheme};

/// A hypergraph `H = <V, E>` (§2.4): nodes are attributes, edges are
/// attribute sets.
///
/// Edges are kept in insertion order; duplicate edges are allowed at the
/// representation level (the acyclicity algorithms normalise as needed),
/// matching the paper's definition where `E` is a *collection*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    nodes: AttrSet,
    edges: Vec<AttrSet>,
}

impl Hypergraph {
    /// Builds a hypergraph from explicit edges; the node set is the union
    /// of the edges.
    pub fn new(edges: Vec<AttrSet>) -> Self {
        let nodes = edges.iter().fold(AttrSet::empty(), |acc, &e| acc | e);
        Hypergraph { nodes, edges }
    }

    /// The hypergraph `H_R` of a database scheme (§2.4).
    pub fn of_scheme(scheme: &DatabaseScheme) -> Self {
        Hypergraph::new(scheme.schemes().iter().map(|s| s.attrs()).collect())
    }

    /// The node set `V`.
    pub fn nodes(&self) -> AttrSet {
        self.nodes
    }

    /// The edges `E`.
    pub fn edges(&self) -> &[AttrSet] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the hypergraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether two edges (by index) are connected by a path of pairwise
    /// intersecting edges.
    pub fn edges_connected(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.edges.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(i) = stack.pop() {
            for (j, &e) in self.edges.iter().enumerate() {
                if !seen[j] && self.edges[i].intersects(e) {
                    if j == to {
                        return true;
                    }
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        false
    }

    /// Whether the hypergraph is connected (every pair of edges connected;
    /// the empty hypergraph and single-edge hypergraphs count as
    /// connected). Isolated nodes cannot occur since nodes are defined as
    /// the union of edges.
    pub fn is_connected(&self) -> bool {
        if self.edges.len() <= 1 {
            return true;
        }
        (1..self.edges.len()).all(|j| self.edges_connected(0, j))
    }

    /// The connected components as lists of edge indices (in ascending
    /// order within each component, components ordered by smallest member).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.edges.len();
        let mut comp: Vec<Option<usize>> = vec![None; n];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if comp[start].is_some() {
                continue;
            }
            let id = out.len();
            let mut members = vec![start];
            comp[start] = Some(id);
            let mut stack = vec![start];
            while let Some(i) = stack.pop() {
                for (j, slot) in comp.iter_mut().enumerate() {
                    if slot.is_none() && self.edges[i].intersects(self.edges[j]) {
                        *slot = Some(id);
                        members.push(j);
                        stack.push(j);
                    }
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// Whether a *family of sets* is connected in the paper's sense
    /// (§2.4): the hypergraph formed by the family is connected. Exposed as
    /// a free check on arbitrary families (Bachman members, blocks, …).
    pub fn family_connected(family: &[AttrSet]) -> bool {
        Hypergraph::new(family.to_vec()).is_connected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    fn h(u: &Universe, edges: &[&str]) -> Hypergraph {
        Hypergraph::new(edges.iter().map(|e| u.set_of(e)).collect())
    }

    #[test]
    fn chain_is_connected() {
        let u = Universe::of_chars("ABCD");
        let g = h(&u, &["AB", "BC", "CD"]);
        assert!(g.is_connected());
        assert!(g.edges_connected(0, 2));
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn disjoint_edges_are_disconnected() {
        let u = Universe::of_chars("ABCD");
        let g = h(&u, &["AB", "CD"]);
        assert!(!g.is_connected());
        assert!(!g.edges_connected(0, 1));
        assert_eq!(g.components(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn single_edge_and_empty_are_connected() {
        let u = Universe::of_chars("AB");
        assert!(h(&u, &["AB"]).is_connected());
        assert!(Hypergraph::new(vec![]).is_connected());
    }

    #[test]
    fn nodes_are_union_of_edges() {
        let u = Universe::of_chars("ABCD");
        let g = h(&u, &["AB", "BC"]);
        assert_eq!(g.nodes(), u.set_of("ABC"));
    }

    #[test]
    fn family_connected_helper() {
        let u = Universe::of_chars("ABCD");
        assert!(Hypergraph::family_connected(&[
            u.set_of("AB"),
            u.set_of("BC")
        ]));
        assert!(!Hypergraph::family_connected(&[
            u.set_of("AB"),
            u.set_of("CD")
        ]));
    }
}
