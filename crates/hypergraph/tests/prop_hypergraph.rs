//! Cross-validation of the acyclicity machinery on random small
//! hypergraphs:
//!
//! * the reduction-based γ-test agrees with the direct γ-cycle search;
//! * Theorem 2.1: for connected hypergraphs, γ-acyclicity coincides with
//!   the existence of a u.m.c. among every subset of nodes;
//! * γ-acyclic ⇒ α-acyclic.

use idr_hypergraph::{bachman, beta, gamma, gyo, Hypergraph};
use idr_relation::{AttrSet, Attribute};
use proptest::prelude::*;

/// Random hypergraphs over ≤ 6 nodes with ≤ 5 edges of size ≥ 1,
/// deduplicated.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(prop::collection::vec(0..6usize, 1..5), 1..6).prop_map(|edges| {
        let mut sets: Vec<AttrSet> = edges
            .into_iter()
            .map(|e| AttrSet::from_iter(e.into_iter().map(Attribute::from_index)))
            .collect();
        sets.sort();
        sets.dedup();
        Hypergraph::new(sets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn reduction_agrees_with_gamma_cycle_oracle(h in arb_hypergraph()) {
        let fast = gamma::is_gamma_acyclic(&h);
        let oracle = gamma::is_gamma_acyclic_oracle(&h);
        prop_assert_eq!(fast, oracle, "edges: {:?}", h.edges());
    }

    #[test]
    fn gamma_acyclic_implies_alpha_acyclic(h in arb_hypergraph()) {
        if gamma::is_gamma_acyclic(&h) {
            prop_assert!(gyo::is_alpha_acyclic(&h), "edges: {:?}", h.edges());
        }
    }

    #[test]
    fn acyclicity_hierarchy_is_a_chain(h in arb_hypergraph()) {
        // γ ⇒ β ⇒ α on random hypergraphs.
        if gamma::is_gamma_acyclic(&h) {
            prop_assert!(beta::is_beta_acyclic(&h), "γ⇒β failed: {:?}", h.edges());
        }
        if beta::is_beta_acyclic(&h) {
            prop_assert!(gyo::is_alpha_acyclic(&h), "β⇒α failed: {:?}", h.edges());
        }
    }

    #[test]
    fn beta_deciders_agree(h in arb_hypergraph()) {
        prop_assert_eq!(
            beta::is_beta_acyclic(&h),
            beta::is_beta_acyclic_oracle(&h),
            "edges: {:?}", h.edges()
        );
    }

    #[test]
    fn theorem_2_1_umc_characterisation(h in arb_hypergraph()) {
        // Theorem 2.1 assumes a connected scheme.
        prop_assume!(h.is_connected());
        // The oracle is exponential in the Bachman closure; skip the rare
        // blow-ups.
        prop_assume!(bachman::bachman_closure(h.edges()).len() <= bachman::MAX_BACHMAN);
        let gamma_acyclic = gamma::is_gamma_acyclic(&h);
        let umc = bachman::has_umc_for_all_subsets(&h);
        prop_assert_eq!(gamma_acyclic, umc, "edges: {:?}", h.edges());
    }

    #[test]
    fn components_partition_edges(h in arb_hypergraph()) {
        let comps = h.components();
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..h.len()).collect();
        prop_assert_eq!(all, expected);
        // Edges in different components never intersect.
        for (i, c1) in comps.iter().enumerate() {
            for c2 in comps.iter().skip(i + 1) {
                for &e1 in c1 {
                    for &e2 in c2 {
                        prop_assert!(h.edges()[e1].is_disjoint(h.edges()[e2]));
                    }
                }
            }
        }
    }

    #[test]
    fn gamma_cycle_witness_is_valid(h in arb_hypergraph()) {
        if let Some(c) = gamma::find_gamma_cycle(&h) {
            let m = c.edges.len();
            prop_assert!(m >= 3);
            // Distinct edges and nodes.
            let mut es: Vec<AttrSet> = c.edges.iter().map(|&i| h.edges()[i]).collect();
            es.sort();
            let before = es.len();
            es.dedup();
            prop_assert_eq!(es.len(), before);
            let mut ns = c.nodes.clone();
            ns.sort();
            let before = ns.len();
            ns.dedup();
            prop_assert_eq!(ns.len(), before);
            // Connectivity: xi ∈ Si ∩ Si+1.
            for i in 0..m {
                let s_i = h.edges()[c.edges[i]];
                let s_next = h.edges()[c.edges[(i + 1) % m]];
                prop_assert!(s_i.contains(c.nodes[i]));
                prop_assert!(s_next.contains(c.nodes[i]));
            }
            // Purity for x1..x_{m-1}.
            for i in 0..m - 1 {
                for (pos, &e) in c.edges.iter().enumerate() {
                    if pos != i && pos != (i + 1) % m {
                        prop_assert!(!h.edges()[e].contains(c.nodes[i]));
                    }
                }
            }
        }
    }
}
