//! Cross-validation of the acyclicity machinery on random small
//! hypergraphs:
//!
//! * the reduction-based γ-test agrees with the direct γ-cycle search;
//! * Theorem 2.1: for connected hypergraphs, γ-acyclicity coincides with
//!   the existence of a u.m.c. among every subset of nodes;
//! * γ-acyclic ⇒ α-acyclic.
//!
//! Seeded [`SplitMix64`] loops — deterministic, offline.

use idr_hypergraph::{bachman, beta, gamma, gyo, Hypergraph};
use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, Attribute};

const CASES: usize = 512;

/// Random hypergraphs over ≤ 6 nodes with ≤ 5 edges of size ≥ 1,
/// deduplicated.
fn rand_hypergraph(rng: &mut SplitMix64) -> Hypergraph {
    let n_edges = rng.gen_range(1, 6);
    let mut sets: Vec<AttrSet> = (0..n_edges)
        .map(|_| {
            let sz = rng.gen_range(1, 5);
            AttrSet::from_iter((0..sz).map(|_| Attribute::from_index(rng.gen_range(0, 6))))
        })
        .collect();
    sets.sort();
    sets.dedup();
    Hypergraph::new(sets)
}

#[test]
fn reduction_agrees_with_gamma_cycle_oracle() {
    let mut master = SplitMix64::new(0x4001);
    for _ in 0..CASES {
        let h = rand_hypergraph(&mut master.split());
        let fast = gamma::is_gamma_acyclic(&h);
        let oracle = gamma::is_gamma_acyclic_oracle(&h);
        assert_eq!(fast, oracle, "edges: {:?}", h.edges());
    }
}

#[test]
fn gamma_acyclic_implies_alpha_acyclic() {
    let mut master = SplitMix64::new(0x4002);
    for _ in 0..CASES {
        let h = rand_hypergraph(&mut master.split());
        if gamma::is_gamma_acyclic(&h) {
            assert!(gyo::is_alpha_acyclic(&h), "edges: {:?}", h.edges());
        }
    }
}

#[test]
fn acyclicity_hierarchy_is_a_chain() {
    let mut master = SplitMix64::new(0x4003);
    for _ in 0..CASES {
        let h = rand_hypergraph(&mut master.split());
        // γ ⇒ β ⇒ α on random hypergraphs.
        if gamma::is_gamma_acyclic(&h) {
            assert!(beta::is_beta_acyclic(&h), "γ⇒β failed: {:?}", h.edges());
        }
        if beta::is_beta_acyclic(&h) {
            assert!(gyo::is_alpha_acyclic(&h), "β⇒α failed: {:?}", h.edges());
        }
    }
}

#[test]
fn beta_deciders_agree() {
    let mut master = SplitMix64::new(0x4004);
    for _ in 0..CASES {
        let h = rand_hypergraph(&mut master.split());
        assert_eq!(
            beta::is_beta_acyclic(&h),
            beta::is_beta_acyclic_oracle(&h),
            "edges: {:?}",
            h.edges()
        );
    }
}

#[test]
fn theorem_2_1_umc_characterisation() {
    let mut master = SplitMix64::new(0x4005);
    for _ in 0..CASES {
        let h = rand_hypergraph(&mut master.split());
        // Theorem 2.1 assumes a connected scheme.
        if !h.is_connected() {
            continue;
        }
        // The oracle is exponential in the Bachman closure; skip the rare
        // blow-ups.
        if bachman::bachman_closure(h.edges()).len() > bachman::MAX_BACHMAN {
            continue;
        }
        let gamma_acyclic = gamma::is_gamma_acyclic(&h);
        let umc = bachman::has_umc_for_all_subsets(&h);
        assert_eq!(gamma_acyclic, umc, "edges: {:?}", h.edges());
    }
}

#[test]
fn components_partition_edges() {
    let mut master = SplitMix64::new(0x4006);
    for _ in 0..CASES {
        let h = rand_hypergraph(&mut master.split());
        let comps = h.components();
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..h.len()).collect();
        assert_eq!(all, expected);
        // Edges in different components never intersect.
        for (i, c1) in comps.iter().enumerate() {
            for c2 in comps.iter().skip(i + 1) {
                for &e1 in c1 {
                    for &e2 in c2 {
                        assert!(h.edges()[e1].is_disjoint(h.edges()[e2]));
                    }
                }
            }
        }
    }
}

#[test]
fn gamma_cycle_witness_is_valid() {
    let mut master = SplitMix64::new(0x4007);
    for _ in 0..CASES {
        let h = rand_hypergraph(&mut master.split());
        if let Some(c) = gamma::find_gamma_cycle(&h) {
            let m = c.edges.len();
            assert!(m >= 3);
            // Distinct edges and nodes.
            let mut es: Vec<AttrSet> = c.edges.iter().map(|&i| h.edges()[i]).collect();
            es.sort();
            let before = es.len();
            es.dedup();
            assert_eq!(es.len(), before);
            let mut ns = c.nodes.clone();
            ns.sort();
            let before = ns.len();
            ns.dedup();
            assert_eq!(ns.len(), before);
            // Connectivity: xi ∈ Si ∩ Si+1.
            for i in 0..m {
                let s_i = h.edges()[c.edges[i]];
                let s_next = h.edges()[c.edges[(i + 1) % m]];
                assert!(s_i.contains(c.nodes[i]));
                assert!(s_next.contains(c.nodes[i]));
            }
            // Purity for x1..x_{m-1}.
            for i in 0..m - 1 {
                for (pos, &e) in c.edges.iter().enumerate() {
                    if pos != i && pos != (i + 1) % m {
                        assert!(!h.edges()[e].contains(c.nodes[i]));
                    }
                }
            }
        }
    }
}
