//! Seeded, offline smoke benchmark for the chase engines.
//!
//! Emits one JSON document on stdout comparing, per synthetic family:
//!
//! * **full-state chase** — naive fixpoint [`idr_chase::chase`] vs the
//!   partition-indexed [`idr_chase::chase_fast`] vs the PR 2 indexed
//!   worklist engine [`IncrementalChase`];
//! * **insert stream** — re-chasing the whole state after every insert
//!   (the pre-engine discipline) vs hub [`WriteHandle`] inserts, which
//!   chase only the dirty rows of the affected block.
//!
//! Everything is seeded and dependency-free, so the numbers are noisy but
//! reproducible in shape: the incremental engine must beat the naive chase
//! on the largest family (asserted by `scripts/bench.sh`).
//!
//! Since the observability PR each family also carries the engine's
//! [`MetricsRegistry`] snapshot for its insert stream, and the document
//! ends with a `trace_overhead` section timing the largest family's
//! incremental chase and insert stream with a live [`EventLog`] tracer
//! attached — `scripts/bench.sh` checks the no-op-tracer numbers against
//! the checked-in PR 2 baseline (<5% regression).
//!
//! Since the replication PR the document also carries a `sync` section:
//! the same scripted insert stream spread over three simulated replicas
//! under three fault plans (clean network, lossy network, partition plus
//! a mid-push crash), reporting rounds-to-convergence and ops shipped.
//! The simulator is fully deterministic, so these are exact integers,
//! not timings.
//!
//! Since the serving PR the document ends with a `serve` section: the
//! concurrent hub ([`WriteHandle`]/read views) over a real group-commit
//! WAL (`idr_store::SharedStore`, fsync on), driven by 1/2/4/8 client
//! threads splitting a fixed op budget. Commit latency is dominated by
//! the commit window plus the fsync, so concurrent clients riding one
//! batch raise throughput even on a single core — `scripts/bench.sh`
//! asserts 4 clients beat 1, and that grouping cuts fsyncs-per-op
//! against the classic one-fsync-per-op discipline.
//!
//! Since the batch PR the document adds a `chase_scale` section —
//! absolute wall-clock of 10^5–10^6-tuple bulk streams (10^7 with
//! `BENCH_SCALE=full`) through the in-memory hub, batch vs per-op — and
//! a `durable_bulk_load` headline: one million tuples into a real
//! fsync-on store, once per-op (one WAL record + one fsync each, the
//! PR 7–8 serving discipline) and once as framed batch groups (one WAL
//! batch + one fsync per group). `scripts/bench.sh` gates the batch
//! path at ≥5x over per-op on that family.

use std::sync::Arc;
use std::time::{Duration, Instant};

use idr_chase::{chase, chase_fast, IncrementalChase, Tableau};
use idr_core::engine::{Engine, Observability};
use idr_core::exec::Guard;
use idr_core::WriteHandle;
use idr_fd::KeyDeps;
use idr_obs::{EventLog, MetricsRegistry, TraceHandle};
use idr_relation::parse::render_tuple_line;
use idr_relation::{DatabaseScheme, DatabaseState, SymbolTable, Tuple};
use idr_store::{tempdir::TempDir, SharedStore, Store};
use idr_sync::{CrashPoint, CrashStep, FaultPlan, Partition, ScriptedOp, Simulator, SyncPolicy};
use idr_core::serving::BatchOp;
use idr_workload::generators::block_chain_scheme;
use idr_workload::scale::{bulk_families, bulk_inserts};
use idr_workload::states::{generate, WorkloadConfig};

const SEED: u64 = 0x1DB5_CE11;
const ITERS: u32 = 5;

/// Wall-time in milliseconds of a single run of `f` — the chase-scale
/// section measures 10^5–10^6-tuple loads where a median-of-5 would cost
/// minutes; at these op counts the per-run jitter is a rounding error.
fn time_once<F: FnOnce()>(f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Median wall-time in milliseconds of `ITERS` runs of `f`.
fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct FamilyReport {
    name: String,
    tuples: usize,
    inserts: usize,
    naive_chase_ms: f64,
    fast_chase_ms: f64,
    incremental_chase_ms: f64,
    naive_rechase_stream_ms: f64,
    hub_stream_ms: f64,
    /// Engine metrics snapshot (single-line JSON) from one metered
    /// hub-build + insert-stream run.
    metrics_json: String,
}

fn bench_family(name: &str, db: &DatabaseScheme, entities: usize, inserts: usize) -> FamilyReport {
    let kd = KeyDeps::of(db);
    let mut sym = SymbolTable::new();
    let w = generate(
        db,
        &mut sym,
        WorkloadConfig {
            entities,
            fragment_pct: 60,
            inserts,
            corrupt_pct: 0,
            seed: SEED,
        },
    );
    let g = Guard::unlimited();

    // Full-state chase: the same state through all three engines.
    let naive_chase_ms = time_ms(|| {
        let mut t = Tableau::of_state(db, &w.state);
        chase(&mut t, kd.full(), &g).expect("consistent");
    });
    let fast_chase_ms = time_ms(|| {
        let mut t = Tableau::of_state(db, &w.state);
        chase_fast(&mut t, kd.full(), &g).expect("consistent");
    });
    let incremental_chase_ms = time_ms(|| {
        let mut ic = IncrementalChase::of_state(db, &w.state, kd.full()).expect("in capacity");
        ic.run(&g).expect("consistent");
    });

    // Insert stream: the pre-engine discipline re-chases the whole state
    // after every accepted insert; the hub's write lanes chase dirty rows.
    let naive_rechase_stream_ms = time_ms(|| {
        let mut state: DatabaseState = w.state.clone();
        for (i, t) in &w.inserts {
            let mut candidate = state.clone();
            candidate.insert(*i, t.clone()).expect("tuple fits scheme");
            if idr_chase::is_consistent(db, &candidate, kd.full(), &g).expect("within budget") {
                state = candidate;
            }
        }
    });
    let engine = Engine::new(db.clone());
    let hub_stream_ms = time_ms(|| {
        let hub = engine.hub(&w.state, &g).expect("within budget");
        let writer = hub.write_handle();
        for (i, t) in &w.inserts {
            writer.insert(*i, t.clone(), &g).expect("within budget");
        }
    });

    // One unmetered-by-time, metered-by-registry pass for the snapshot.
    let registry = Arc::new(MetricsRegistry::new());
    let metered = Engine::new(db.clone()).with_observability(Observability {
        metrics: Some(Arc::clone(&registry)),
        ..Observability::default()
    });
    let hub = metered.hub(&w.state, &g).expect("within budget");
    let writer = hub.write_handle();
    for (i, t) in &w.inserts {
        writer.insert(*i, t.clone(), &g).expect("within budget");
    }

    FamilyReport {
        name: name.to_string(),
        tuples: w.state.total_tuples(),
        inserts: w.inserts.len(),
        naive_chase_ms,
        fast_chase_ms,
        incremental_chase_ms,
        naive_rechase_stream_ms,
        hub_stream_ms,
        metrics_json: registry.snapshot().to_json(),
    }
}

/// Wall-clock of the largest family's hot paths with a live ring-buffer
/// tracer attached, against the no-op-handle numbers measured above. The
/// gap between `*_noop` here and the PR 2 baseline is the cost of the
/// dormant instrumentation (asserted <5% by `scripts/bench.sh`); the gap
/// to `*_traced` is the cost of actually recording events.
struct OverheadReport {
    family: String,
    incremental_noop_ms: f64,
    incremental_traced_ms: f64,
    stream_noop_ms: f64,
    stream_traced_ms: f64,
}

fn bench_overhead(
    name: &str,
    db: &DatabaseScheme,
    entities: usize,
    inserts: usize,
    noop: &FamilyReport,
) -> OverheadReport {
    let kd = KeyDeps::of(db);
    let mut sym = SymbolTable::new();
    let w = generate(
        db,
        &mut sym,
        WorkloadConfig {
            entities,
            fragment_pct: 60,
            inserts,
            corrupt_pct: 0,
            seed: SEED,
        },
    );
    let g = Guard::unlimited();
    let log = Arc::new(EventLog::new(1 << 16));
    let incremental_traced_ms = time_ms(|| {
        let mut ic = IncrementalChase::of_state(db, &w.state, kd.full())
            .expect("in capacity")
            .with_observability(TraceHandle::to_log(Arc::clone(&log)), None, "bench");
        ic.run(&g).expect("consistent");
        log.drain();
    });
    let traced_engine = Engine::new(db.clone()).with_observability(Observability {
        tracer: TraceHandle::to_log(Arc::clone(&log)),
        ..Observability::default()
    });
    let stream_traced_ms = time_ms(|| {
        let hub = traced_engine.hub(&w.state, &g).expect("within budget");
        let writer = hub.write_handle();
        for (i, t) in &w.inserts {
            writer.insert(*i, t.clone(), &g).expect("within budget");
        }
        log.drain();
    });
    OverheadReport {
        family: name.to_string(),
        incremental_noop_ms: noop.incremental_chase_ms,
        incremental_traced_ms,
        stream_noop_ms: noop.hub_stream_ms,
        stream_traced_ms,
    }
}

/// Rounds-to-convergence and ops shipped for one fault plan — exact
/// deterministic integers from the replication simulator, not timings.
struct SyncBenchReport {
    plan: String,
    rounds: usize,
    ops_shipped: usize,
    messages_sent: usize,
    dropped: usize,
    crashes: usize,
}

/// The same generated insert stream, spread round-robin over three
/// replicas (one op per replica per round), synced to convergence under
/// each of three adversaries. Convergence itself is asserted — a plan
/// that stops converging fails the bench run, not just the gate script.
fn bench_sync(db: &DatabaseScheme, entities: usize, inserts: usize) -> Vec<SyncBenchReport> {
    let replicas = 3;
    let mut sym = SymbolTable::new();
    let w = generate(
        db,
        &mut sym,
        WorkloadConfig {
            entities,
            fragment_pct: 60,
            inserts,
            corrupt_pct: 0,
            seed: SEED,
        },
    );
    let ops: Vec<ScriptedOp> = w
        .inserts
        .iter()
        .enumerate()
        .map(|(k, (i, t))| ScriptedOp {
            round: k / replicas,
            replica: k % replicas,
            line: format!("insert {}", render_tuple_line(db, &sym, *i, t)),
        })
        .collect();
    let lossy = FaultPlan {
        drop_pct: 20,
        dup_pct: 10,
        delay_pct: 20,
        max_delay: 2,
        ..FaultPlan::clean()
    };
    let partition_crash = FaultPlan {
        drop_pct: 10,
        partitions: vec![Partition {
            from_round: 2,
            to_round: 10,
            groups: vec![vec![0, 1], vec![2]],
        }],
        crashes: vec![CrashPoint {
            round: 3,
            replica: 1,
            step: CrashStep::OpsPush,
        }],
        ..FaultPlan::clean()
    };
    [
        ("clean", FaultPlan::clean()),
        ("lossy", lossy),
        ("partition_crash", partition_crash),
    ]
    .into_iter()
    .map(|(name, plan)| {
        let mut sim = Simulator::new(db, replicas, ops.clone(), plan, SyncPolicy::default(), SEED);
        let report = sim.run(256).expect("sync bench within budget");
        assert!(
            report.converged && report.diverged.is_none(),
            "sync bench plan {name:?} failed to converge"
        );
        SyncBenchReport {
            plan: name.to_string(),
            rounds: report.rounds,
            ops_shipped: report.ops_shipped,
            messages_sent: report.messages_sent,
            dropped: report.dropped,
            crashes: report.crashes,
        }
    })
    .collect()
}

/// The commit window every serve-throughput run uses: long enough that
/// commit latency (window + fsync) dominates per-op cost, so the benefit
/// of concurrent clients sharing one batch is visible even on one core.
const SERVE_WINDOW_US: u64 = 200;
/// Each client opens a fresh `ReadView` and runs one projection after
/// this many inserts.
const QUERY_EVERY: usize = 8;

/// Throughput of the durable serving stack at one client count.
struct ServeReport {
    clients: usize,
    inserts: usize,
    queries: usize,
    wall_ms: f64,
    ops_per_sec: f64,
}

/// fsync accounting for one group-commit configuration.
struct GroupCommitReport {
    clients: usize,
    window_us: u64,
    inserts: usize,
    batches: u64,
    fsyncs: u64,
}

/// Pre-interned per-block insert streams for `blocks` blocks of
/// `rels_per_block` chained relations ([`block_chain_scheme`] layout:
/// block `b` owns relations `b*rels_per_block ..`). Every tuple carries
/// fresh symbols, so every insert is accepted and does real chase work.
fn serve_ops(
    db: &DatabaseScheme,
    sym: &mut SymbolTable,
    blocks: usize,
    rels_per_block: usize,
    per_block: usize,
) -> Vec<Vec<(usize, Tuple)>> {
    (0..blocks)
        .map(|b| {
            (0..per_block)
                .map(|k| {
                    let i = b * rels_per_block + k % rels_per_block;
                    let t = Tuple::from_pairs(db.scheme(i).attrs().iter().map(|a| {
                        (a, sym.intern(&format!("{}_b{b}k{k}", db.universe().name(a))))
                    }));
                    (i, t)
                })
                .collect()
        })
        .collect()
}

/// Runs the per-block op streams through one hub over a fresh durable
/// store: `clients` threads split the blocks round-robin, each insert
/// commits through the group WAL (fsync on, `window_us` commit window),
/// and every [`QUERY_EVERY`]-th insert opens an epoch-stamped read view
/// and runs a projection over the block's first relation. Returns the
/// store so callers can read batch/fsync counters.
fn serve_run(
    engine: &Engine,
    db: &DatabaseScheme,
    sym: &SymbolTable,
    ops: &[Vec<(usize, Tuple)>],
    clients: usize,
    window_us: u64,
    label: &str,
) -> Arc<SharedStore> {
    let g = Guard::unlimited();
    let dir = TempDir::new(label);
    let store = Store::init(dir.path(), db)
        .expect("bench store init")
        .with_sync(true);
    let shared = Arc::new(
        SharedStore::new(store).with_group_window(Duration::from_micros(window_us)),
    );
    shared
        .symbols()
        .lock()
        .expect("fresh store symbol table")
        .clone_from(sym);
    let hub = engine
        .hub_with(&DatabaseState::empty(db), &g, shared.clone())
        .expect("empty state is consistent");
    let writer = hub.write_handle();
    std::thread::scope(|s| {
        for c in 0..clients {
            let writer: WriteHandle<'_> = writer.clone();
            let g = &g;
            s.spawn(move || {
                for b in (c..ops.len()).step_by(clients) {
                    let x = db.scheme(ops[b][0].0).attrs();
                    for (k, (i, t)) in ops[b].iter().enumerate() {
                        writer.insert(*i, t.clone(), g).expect("serve insert");
                        if (k + 1) % QUERY_EVERY == 0 {
                            writer
                                .read_view()
                                .total_projection(x, g)
                                .expect("within budget")
                                .expect("state stays consistent");
                        }
                    }
                }
            });
        }
    });
    shared
}

/// Client-scaling sweep: the same fixed op budget served by 1/2/4/8
/// client threads. Per-block write lanes plus group commit mean more
/// clients ride each commit barrier, so throughput must rise with the
/// client count (asserted for 4 vs 1 by `scripts/bench.sh`).
fn bench_serve(
    engine: &Engine,
    db: &DatabaseScheme,
    sym: &SymbolTable,
    ops: &[Vec<(usize, Tuple)>],
) -> Vec<ServeReport> {
    let inserts: usize = ops.iter().map(Vec::len).sum();
    let queries: usize = ops.iter().map(|o| o.len() / QUERY_EVERY).sum();
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|clients| {
            let wall_ms = time_ms(|| {
                serve_run(engine, db, sym, ops, clients, SERVE_WINDOW_US, "bench-serve");
            });
            ServeReport {
                clients,
                inserts,
                queries,
                wall_ms,
                ops_per_sec: (inserts + queries) as f64 / (wall_ms / 1e3).max(1e-9),
            }
        })
        .collect()
}

/// fsyncs-per-op with and without group commit: the classic discipline
/// (one client, zero window — every append is its own batch and its own
/// fsync) against four clients sharing a commit window.
fn bench_group_commit(
    engine: &Engine,
    db: &DatabaseScheme,
    sym: &SymbolTable,
    ops: &[Vec<(usize, Tuple)>],
) -> Vec<GroupCommitReport> {
    let inserts: usize = ops.iter().map(Vec::len).sum();
    [(1usize, 0u64), (4, 300)]
        .into_iter()
        .map(|(clients, window_us)| {
            let shared = serve_run(engine, db, sym, ops, clients, window_us, "bench-group");
            let wal = shared.group_wal();
            GroupCommitReport {
                clients,
                window_us,
                inserts,
                batches: wal.batches(),
                fsyncs: wal.fsyncs(),
            }
        })
        .collect()
}

/// Absolute wall-clock of a bulk insert stream through the in-memory
/// hub, batch vs per-op. These are the honest chase-path numbers at
/// 10^5–10^6 tuples the toy families cannot produce.
struct ScaleReport {
    family: String,
    tuples: usize,
    gen_ms: f64,
    hub_per_op_ms: f64,
    hub_batch_ms: f64,
}

fn bench_chase_scale(name: &str, db: &DatabaseScheme, tuples: usize) -> ScaleReport {
    let g = Guard::unlimited();
    let mut sym = SymbolTable::new();
    let mut ops = Vec::new();
    let gen_ms = time_once(|| ops = bulk_inserts(db, &mut sym, tuples));
    let engine = Engine::new(db.clone());
    let empty = DatabaseState::empty(db);

    let hub = engine.hub(&empty, &g).expect("empty state is consistent");
    let writer = hub.write_handle();
    let hub_per_op_ms = time_once(|| {
        for (i, t) in &ops {
            writer.insert(*i, t.clone(), &g).expect("bulk insert");
        }
    });

    let hub2 = engine.hub(&empty, &g).expect("empty state is consistent");
    let writer2 = hub2.write_handle();
    let group: Vec<BatchOp> = ops
        .iter()
        .map(|(i, t)| BatchOp::Insert { rel: *i, t: t.clone() })
        .collect();
    let hub_batch_ms = time_once(|| {
        let verdicts = writer2.apply_batch(&group, &g).expect("bulk batch");
        assert!(verdicts.iter().all(|&v| v), "bulk stream must be accepted");
    });

    ScaleReport {
        family: name.to_string(),
        tuples,
        gen_ms,
        hub_per_op_ms,
        hub_batch_ms,
    }
}

/// The headline of the batch pipeline: loading a ≥10^6-tuple family into
/// a real durable store (fsync on, zero commit window), once through the
/// per-op serving discipline of PRs 7–8 — every insert renders, frames
/// and fsyncs its own WAL record — and once as framed batch groups, each
/// committing one WAL batch with one fsync. `scripts/bench.sh` gates the
/// speedup at ≥5x.
struct BulkLoadReport {
    family: String,
    tuples: usize,
    group_size: usize,
    per_op_ms: f64,
    per_op_fsyncs: u64,
    batch_ms: f64,
    batch_fsyncs: u64,
}

fn bench_durable_bulk_load(
    name: &str,
    db: &DatabaseScheme,
    tuples: usize,
    group_size: usize,
) -> BulkLoadReport {
    let g = Guard::unlimited();
    let engine = Engine::new(db.clone());
    let mut sym = SymbolTable::new();
    let ops = bulk_inserts(db, &mut sym, tuples);

    let durable_hub = |label: &str| {
        let dir = TempDir::new(label);
        let store = Store::init(dir.path(), db)
            .expect("bench store init")
            .with_sync(true);
        let shared = Arc::new(SharedStore::new(store).with_group_window(Duration::ZERO));
        shared
            .symbols()
            .lock()
            .expect("fresh store symbol table")
            .clone_from(&sym);
        let hub = engine
            .hub_with(&DatabaseState::empty(db), &g, shared.clone())
            .expect("empty state is consistent");
        (dir, shared, hub)
    };

    eprintln!("  per-op durable load of {tuples} tuples (one fsync per op; this is the slow one) ...");
    let (_dir_a, shared_a, hub_a) = durable_hub("bulk-per-op");
    let writer = hub_a.write_handle();
    let per_op_ms = time_once(|| {
        for (i, t) in &ops {
            writer.insert(*i, t.clone(), &g).expect("durable insert");
        }
    });
    let per_op_fsyncs = shared_a.group_wal().fsyncs();
    drop(hub_a);

    eprintln!("  batched durable load of {tuples} tuples ({group_size}-op framed groups) ...");
    let (_dir_b, shared_b, hub_b) = durable_hub("bulk-batch");
    let writer = hub_b.write_handle();
    let batch_ms = time_once(|| {
        for chunk in ops.chunks(group_size) {
            let group: Vec<BatchOp> = chunk
                .iter()
                .map(|(i, t)| BatchOp::Insert { rel: *i, t: t.clone() })
                .collect();
            let verdicts = writer.apply_batch(&group, &g).expect("durable batch");
            assert!(verdicts.iter().all(|&v| v), "bulk stream must be accepted");
        }
    });
    let batch_fsyncs = shared_b.group_wal().fsyncs();

    BulkLoadReport {
        family: name.to_string(),
        tuples,
        group_size,
        per_op_ms,
        per_op_fsyncs,
        batch_ms,
        batch_fsyncs,
    }
}

fn main() {
    let families = [
        ("block_chain(2,3)", block_chain_scheme(2, 3), 12, 24),
        ("block_chain(4,3)", block_chain_scheme(4, 3), 18, 36),
        ("block_chain(6,4)", block_chain_scheme(6, 4), 24, 48),
    ];
    let reports: Vec<FamilyReport> = families
        .iter()
        .map(|(name, db, entities, inserts)| {
            eprintln!("benchmarking {name} ...");
            bench_family(name, db, *entities, *inserts)
        })
        .collect();
    let (name, db, entities, inserts) = &families[families.len() - 1];
    eprintln!("benchmarking {name} with live tracer ...");
    let overhead = bench_overhead(name, db, *entities, *inserts, reports.last().expect("families"));
    eprintln!("benchmarking {name} replication sync ...");
    let sync = bench_sync(db, *entities, *inserts);

    let serve_family = "block_chain(8,3)";
    let serve_db = block_chain_scheme(8, 3);
    let serve_engine = Engine::new(serve_db.clone());
    let mut serve_sym = SymbolTable::new();
    let serve_stream = serve_ops(&serve_db, &mut serve_sym, 8, 3, 30);
    eprintln!("benchmarking {serve_family} durable serving (1/2/4/8 clients) ...");
    let serve = bench_serve(&serve_engine, &serve_db, &serve_sym, &serve_stream);
    eprintln!("benchmarking {serve_family} group-commit fsync accounting ...");
    let group = bench_group_commit(&serve_engine, &serve_db, &serve_sym, &serve_stream);

    // Chase-path absolute numbers at 10^5–10^6 tuples (10^7 with
    // BENCH_SCALE=full), then the durable bulk-load headline.
    let full_scale = std::env::var("BENCH_SCALE").is_ok_and(|v| v == "full");
    let mut scale_sizes = vec![100_000usize, 1_000_000];
    if full_scale {
        scale_sizes.push(10_000_000);
    } else {
        eprintln!("note: 10^7 family skipped (set BENCH_SCALE=full to include it)");
    }
    let mut scale = Vec::new();
    for (fam_name, fam_db) in bulk_families() {
        for &n in &scale_sizes {
            if n > 1_000_000 && fam_name != "block_chain(4,4)" {
                continue; // 10^7 only on the sharded family the gate uses
            }
            eprintln!("benchmarking {fam_name} bulk stream at {n} tuples ...");
            scale.push(bench_chase_scale(fam_name, &fam_db, n));
        }
    }
    let bulk_family_name = "block_chain(4,4)";
    let bulk_db = bulk_families()
        .into_iter()
        .find(|(n, _)| *n == bulk_family_name)
        .expect("family exists")
        .1;
    eprintln!("benchmarking {bulk_family_name} durable bulk load at 1000000 tuples ...");
    let bulk = bench_durable_bulk_load(bulk_family_name, &bulk_db, 1_000_000, 10_000);

    // Hand-rolled JSON: the workspace is hermetic (no serde).
    println!("{{");
    println!("  \"bench\": \"pr9-batch-smoke\",");
    println!("  \"seed\": {SEED},");
    println!("  \"iters\": {ITERS},");
    println!("  \"families\": [");
    for (k, r) in reports.iter().enumerate() {
        let comma = if k + 1 < reports.len() { "," } else { "" };
        println!("    {{");
        println!("      \"name\": \"{}\",", r.name);
        println!("      \"tuples\": {},", r.tuples);
        println!("      \"full_chase_ms\": {{");
        println!("        \"naive\": {:.3},", r.naive_chase_ms);
        println!("        \"fast\": {:.3},", r.fast_chase_ms);
        println!("        \"incremental\": {:.3}", r.incremental_chase_ms);
        println!("      }},");
        println!("      \"insert_stream_ms\": {{");
        println!("        \"inserts\": {},", r.inserts);
        println!("        \"naive_rechase\": {:.3},", r.naive_rechase_stream_ms);
        println!("        \"hub_stream\": {:.3},", r.hub_stream_ms);
        println!(
            "        \"speedup\": {:.2}",
            r.naive_rechase_stream_ms / r.hub_stream_ms.max(1e-9)
        );
        println!("      }},");
        println!("      \"metrics\": {}", r.metrics_json);
        println!("    }}{comma}");
    }
    println!("  ],");
    println!("  \"trace_overhead\": {{");
    println!("    \"family\": \"{}\",", overhead.family);
    println!("    \"incremental_noop_ms\": {:.3},", overhead.incremental_noop_ms);
    println!("    \"incremental_traced_ms\": {:.3},", overhead.incremental_traced_ms);
    println!("    \"stream_noop_ms\": {:.3},", overhead.stream_noop_ms);
    println!("    \"stream_traced_ms\": {:.3}", overhead.stream_traced_ms);
    println!("  }},");
    println!("  \"sync\": {{");
    println!("    \"family\": \"{name}\",");
    println!("    \"replicas\": 3,");
    println!("    \"plans\": [");
    for (k, s) in sync.iter().enumerate() {
        let comma = if k + 1 < sync.len() { "," } else { "" };
        println!("      {{");
        println!("        \"plan\": \"{}\",", s.plan);
        println!("        \"rounds_to_convergence\": {},", s.rounds);
        println!("        \"ops_shipped\": {},", s.ops_shipped);
        println!("        \"messages_sent\": {},", s.messages_sent);
        println!("        \"dropped\": {},", s.dropped);
        println!("        \"crashes\": {}", s.crashes);
        println!("      }}{comma}");
    }
    println!("    ]");
    println!("  }},");
    println!("  \"serve\": {{");
    println!("    \"family\": \"{serve_family}\",");
    println!("    \"window_us\": {SERVE_WINDOW_US},");
    println!("    \"query_every\": {QUERY_EVERY},");
    println!("    \"clients\": [");
    for (k, s) in serve.iter().enumerate() {
        let comma = if k + 1 < serve.len() { "," } else { "" };
        println!("      {{");
        println!("        \"clients\": {},", s.clients);
        println!("        \"inserts\": {},", s.inserts);
        println!("        \"queries\": {},", s.queries);
        println!("        \"wall_ms\": {:.3},", s.wall_ms);
        println!("        \"ops_per_sec\": {:.1}", s.ops_per_sec);
        println!("      }}{comma}");
    }
    println!("    ],");
    println!("    \"group_commit\": [");
    for (k, gc) in group.iter().enumerate() {
        let comma = if k + 1 < group.len() { "," } else { "" };
        println!("      {{");
        println!("        \"mode\": \"{}\",", if gc.window_us == 0 { "per_op" } else { "grouped" });
        println!("        \"clients\": {},", gc.clients);
        println!("        \"window_us\": {},", gc.window_us);
        println!("        \"inserts\": {},", gc.inserts);
        println!("        \"batches\": {},", gc.batches);
        println!("        \"fsyncs\": {},", gc.fsyncs);
        println!(
            "        \"fsyncs_per_op\": {:.3}",
            gc.fsyncs as f64 / gc.inserts as f64
        );
        println!("      }}{comma}");
    }
    println!("    ]");
    println!("  }},");
    println!("  \"chase_scale\": {{");
    println!("    \"iters\": 1,");
    println!("    \"families\": [");
    for (k, s) in scale.iter().enumerate() {
        let comma = if k + 1 < scale.len() { "," } else { "" };
        println!("      {{");
        println!("        \"name\": \"{}\",", s.family);
        println!("        \"tuples\": {},", s.tuples);
        println!("        \"gen_ms\": {:.1},", s.gen_ms);
        println!("        \"hub_per_op_ms\": {:.1},", s.hub_per_op_ms);
        println!("        \"hub_batch_ms\": {:.1}", s.hub_batch_ms);
        println!("      }}{comma}");
    }
    println!("    ]");
    println!("  }},");
    println!("  \"durable_bulk_load\": {{");
    println!("    \"family\": \"{}\",", bulk.family);
    println!("    \"tuples\": {},", bulk.tuples);
    println!("    \"group_size\": {},", bulk.group_size);
    println!("    \"sync\": true,");
    println!("    \"window_us\": 0,");
    println!("    \"per_op_ms\": {:.1},", bulk.per_op_ms);
    println!("    \"per_op_fsyncs\": {},", bulk.per_op_fsyncs);
    println!("    \"batch_ms\": {:.1},", bulk.batch_ms);
    println!("    \"batch_fsyncs\": {},", bulk.batch_fsyncs);
    println!(
        "    \"speedup\": {:.2}",
        bulk.per_op_ms / bulk.batch_ms.max(1e-9)
    );
    println!("  }}");
    println!("}}");
}
