//! Replication suite for the `idr-sync` layer (DESIGN.md §13): WAL
//! ranges shipped under digest anti-entropy must drive every replica to
//! a byte-identical state — same tuples, same re-earned consistency
//! verdict — no matter what the scripted adversary does to the network.
//!
//! * The checked-in demo scenario (partition + crash + drops on the
//!   paper's Example 1) converges, and its key-violating insert is
//!   rejected identically everywhere.
//! * Scenario files round-trip through `render ∘ parse`.
//! * The simulator is deterministic: same scenario, same seed — same
//!   trace, same shipped-op count, byte for byte.
//! * A partition that never heals prevents convergence inside the round
//!   budget (the liveness failure the fuzzer classifies), and the same
//!   plan with the partition healed converges.
//! * A bounded run of the replication-convergence fuzzer (the oracle's
//!   sixth arm) is clean.

use independence_reducible::oracle::sync_fuzz;
use independence_reducible::prelude::*;
use independence_reducible::relation::parse::parse_scheme;
use independence_reducible::sync::{
    parse_scenario, render_scenario, FaultPlan, Partition, ScriptedOp, Simulator, SyncPolicy,
    Transport,
};

const EXAMPLE1: &str = "
universe: C T H R S G
scheme R1: H R C  keys H R
scheme R2: H T R  keys H T | H R
scheme R3: H T C  keys H T
scheme R4: C S G  keys C S
scheme R5: H S R  keys H S
";

fn ops(script: &[(usize, usize, &str)]) -> Vec<ScriptedOp> {
    script
        .iter()
        .map(|&(round, replica, line)| ScriptedOp {
            round,
            replica,
            line: line.to_string(),
        })
        .collect()
}

/// The demo scenario shipped in the repo is the walkthrough the README
/// narrates: it must keep converging, and the duplicate-key insert for
/// hour h1 / room r1 must be rejected on every replica (5 tuples, not
/// 6, and the surviving course is c1).
#[test]
fn shipped_demo_scenario_converges_and_rejects_the_conflicting_insert() {
    let text = std::fs::read_to_string("examples/scenarios/partition-heal.txt")
        .expect("demo scenario file");
    let scenario = parse_scenario(&text).expect("demo scenario parses");
    let report = scenario.run(TraceHandle::default()).expect("within budget");
    assert!(report.converged, "demo scenario must converge");
    assert_eq!(report.diverged, None);
    assert!(report.consistent, "converged state must be consistent");
    assert_eq!(report.state_lines.len(), 5, "{:?}", report.state_lines);
    assert!(
        report.state_lines.iter().any(|l| l.contains("C=c1")),
        "the first R1 insert must survive"
    );
    assert!(
        !report.state_lines.iter().any(|l| l.contains("C=c9")),
        "the key-violating R1 insert must be rejected everywhere"
    );
    assert!(report.crashes >= 1, "the scripted crash must fire");
}

#[test]
fn scenario_files_round_trip_through_render_and_parse() {
    let text = std::fs::read_to_string("examples/scenarios/partition-heal.txt")
        .expect("demo scenario file");
    let a = parse_scenario(&text).expect("parses");
    let b = parse_scenario(&render_scenario(&a)).expect("rendered form parses");
    assert_eq!(render_scenario(&a), render_scenario(&b));
    assert_eq!(a.replicas, b.replicas);
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.ops.len(), b.ops.len());

    // The wire-transport directive survives the same round trip, so a
    // shrunk `fuzz --sync --wire` failure replays on the right runner.
    assert_eq!(a.transport, Transport::Sim, "demo scenario is sim");
    let mut wired = a;
    wired.transport = Transport::Wire;
    let rendered = render_scenario(&wired);
    assert!(rendered.contains("transport: wire\n"), "{rendered}");
    let back = parse_scenario(&rendered).expect("wire form parses");
    assert_eq!(back.transport, Transport::Wire);
    assert_eq!(render_scenario(&back), rendered);
}

/// Same scheme, same script, same seed: the whole run — every round's
/// digest trace line and every counter — replays byte for byte.
#[test]
fn simulator_is_deterministic() {
    let db = parse_scheme(EXAMPLE1).unwrap();
    let script = ops(&[
        (0, 0, "insert R1: H=h1 R=r1 C=c1"),
        (1, 1, "insert R4: C=c1 S=s1 G=g1"),
        (2, 2, "insert R1: H=h1 R=r1 C=c9"),
    ]);
    let plan = FaultPlan {
        drop_pct: 25,
        dup_pct: 10,
        delay_pct: 20,
        max_delay: 2,
        ..FaultPlan::clean()
    };
    let run = || {
        let mut sim = Simulator::new(&db, 3, script.clone(), plan.clone(), SyncPolicy::default(), 9);
        sim.run(64).expect("within budget")
    };
    let (a, b) = (run(), run());
    assert!(a.converged);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.ops_shipped, b.ops_shipped);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.state_lines, b.state_lines);
}

/// After convergence the digests are only a summary — the suite's core
/// claim is that every replica's *rendered state and verdict* agree,
/// which the simulator asserts internally and we re-check here against
/// replica 0's report.
#[test]
fn all_replicas_end_byte_identical_under_faults() {
    let db = parse_scheme(EXAMPLE1).unwrap();
    let script = ops(&[
        (0, 0, "insert R2: H=h1 T=t1 R=r1"),
        (0, 1, "insert R3: H=h1 T=t1 C=c1"),
        (1, 2, "insert R1: H=h1 R=r1 C=c1"),
        (3, 1, "delete R3: H=h1 T=t1 C=c1"),
    ]);
    let plan = FaultPlan {
        drop_pct: 15,
        delay_pct: 15,
        max_delay: 2,
        ..FaultPlan::clean()
    };
    let mut sim = Simulator::new(&db, 4, script, plan, SyncPolicy::default(), 3);
    let report = sim.run(96).expect("within budget");
    assert!(report.converged, "trace:\n{}", report.trace.join("\n"));
    for r in sim.replicas() {
        assert_eq!(r.state_lines(), report.state_lines);
        assert_eq!(r.is_consistent(), report.consistent);
    }
}

/// An eternal partition starves one replica of anti-entropy: the run
/// must *not* report convergence (that would be a false positive for
/// the oracle) — and healing the same partition restores it.
#[test]
fn unhealed_partition_prevents_convergence_and_healing_restores_it() {
    let db = parse_scheme(EXAMPLE1).unwrap();
    let script = ops(&[(0, 0, "insert R1: H=h1 R=r1 C=c1")]);
    let eternal = FaultPlan {
        partitions: vec![Partition {
            from_round: 0,
            to_round: usize::MAX,
            groups: vec![vec![0], vec![1]],
        }],
        ..FaultPlan::clean()
    };
    let mut sim = Simulator::new(&db, 2, script.clone(), eternal, SyncPolicy::default(), 5);
    let report = sim.run(32).expect("within budget");
    assert!(!report.converged, "partitioned replicas cannot converge");
    assert_eq!(report.diverged, None, "non-convergence is not divergence");

    let healing = FaultPlan {
        partitions: vec![Partition {
            from_round: 0,
            to_round: 8,
            groups: vec![vec![0], vec![1]],
        }],
        ..FaultPlan::clean()
    };
    let mut sim = Simulator::new(&db, 2, script, healing, SyncPolicy::default(), 5);
    let report = sim.run(64).expect("within budget");
    assert!(report.converged, "healed partition must converge");
    assert_eq!(report.state_lines.len(), 1);
}

/// Bounded in-process run of the oracle's sixth arm — the `cargo test`
/// version of the CI `idr fuzz --sync` step.
#[test]
fn bounded_sync_fuzz_run_is_clean() {
    let summary = sync_fuzz(42, 40, Transport::Sim, None);
    assert_eq!(summary.cases, 40);
    assert!(
        summary.is_clean(),
        "failures: {}",
        summary
            .failures
            .iter()
            .map(|f| format!("{f}\n--- scenario ---\n{}", f.scenario))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(summary.ops_shipped > 0);
}
