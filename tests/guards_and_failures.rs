//! Failure-model tests: the library must fail loudly, *typedly*, and
//! recoverably at its documented limits — never by unwinding through the
//! caller — and degrade correctly on malformed or adversarial inputs.
//!
//! Three families:
//!
//! * **Budget guards** — the exponential enumerations (cover families,
//!   FD projection, subset iteration) charge the guard up front and
//!   return [`ExecError::BudgetExceeded`] instead of panicking.
//! * **Fault injection** — Algorithms 2 and 5 run their single-tuple
//!   selections through a retry policy: transient faults are retried to
//!   the fault-free answer, permanent ones surface as
//!   [`ExecError::Faulted`], and exhausted budgets as `BudgetExceeded` —
//!   never a panic, never a half-updated maintainer.
//! * **Cross-surface agreement** — the facade, the maintainers and the
//!   reference chase must agree on verdicts and answers over the paper's
//!   fixtures and random workloads.

use std::time::Duration;

use independence_reducible::core::maintain::{algorithm2, algorithm5, StateIndex};
use independence_reducible::core::query::minimal_lossless_covers;
use independence_reducible::exec::{
    Budget, ExecError, FaultInjector, FaultKind, FaultPlan, Guard, Resource, RetryPolicy,
};
use independence_reducible::prelude::*;
use independence_reducible::relation::rng::SplitMix64;
use independence_reducible::relation::RelationError;

// ---------------------------------------------------------------------------
// Budget guards: typed errors at the documented limits.
// ---------------------------------------------------------------------------

#[test]
fn cover_family_guard_returns_typed_error() {
    let u = Universe::of_chars("AB");
    let fds = FdSet::new();
    // A family beyond the u32-mask representation fails immediately —
    // typed, not a panic or a hang.
    let family = vec![u.set_of("AB"); 40];
    let err =
        minimal_lossless_covers(&family, &fds, u.set_of("A"), &Guard::unlimited()).unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: Resource::Enumeration,
                ..
            }
        ),
        "{err}"
    );
    // A representable family that exceeds the default enumeration backstop
    // (2^25 > DEFAULT_MAX_ENUMERATION = 2^22) also fails typed, up front.
    let family = vec![u.set_of("AB"); 25];
    let err =
        minimal_lossless_covers(&family, &fds, u.set_of("A"), &Guard::unlimited()).unwrap_err();
    assert!(err.is_resource_exhaustion(), "{err}");
    // And an explicit tiny budget trips with limit/spent observability.
    let family = vec![u.set_of("AB"); 5];
    let guard = Guard::new(Budget::unlimited().with_max_enumeration(10));
    match minimal_lossless_covers(&family, &fds, u.set_of("A"), &guard).unwrap_err() {
        ExecError::BudgetExceeded {
            resource: Resource::Enumeration,
            limit: 10,
            spent,
        } => assert_eq!(spent, 32, "2^5 charged up front"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn fd_projection_width_guard_returns_typed_error() {
    let mut u = Universe::new();
    for i in 0..25 {
        u.add(&format!("A{i}")).unwrap();
    }
    let f = FdSet::new();
    // 2^25 subsets exceed the default enumeration backstop.
    let err = independence_reducible::fd::project_fds_bounded(&f, u.all(), &Guard::unlimited())
        .unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: Resource::Enumeration,
                ..
            }
        ),
        "{err}"
    );
    // With an explicitly raised budget the same projection succeeds and
    // agrees with the panicking-guard implementation on a narrow scheme.
    let narrow = AttrSet::from_iter(u.all().iter().take(6));
    let guard = Guard::new(Budget::unlimited().with_max_enumeration(1 << 10));
    let bounded = independence_reducible::fd::project_fds_bounded(&f, narrow, &guard).unwrap();
    let reference = independence_reducible::fd::project::project_fds(&f, narrow);
    assert!(bounded.equivalent(&reference));
}

#[test]
fn subsets_guard_returns_typed_error() {
    let mut u = Universe::new();
    for i in 0..30 {
        u.add(&format!("A{i}")).unwrap();
    }
    // 2^30 > DEFAULT_MAX_ENUMERATION: typed refusal even on an unlimited
    // guard.
    let err = u.all().try_subsets(&Guard::unlimited()).err().unwrap();
    assert!(err.is_resource_exhaustion(), "{err}");
    // Small sets enumerate fully under a sufficient budget.
    let small = AttrSet::from_iter(u.all().iter().take(4));
    let guard = Guard::new(Budget::unlimited().with_max_enumeration(16));
    assert_eq!(small.try_subsets(&guard).unwrap().count(), 16);
    let snap = guard.snapshot();
    assert_eq!(snap.enumeration, 16);
    assert_eq!(snap.enumeration, guard.enumeration_spent());
}

#[test]
fn chase_honours_deadline_and_budget() {
    let db = SchemeBuilder::new("ABC")
        .scheme("R1", "AB", ["A"])
        .scheme("R2", "AC", ["A"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let mut sym = SymbolTable::new();
    // Two fragments sharing the key value: the chase must equate their
    // null columns, so at least one rule application is required.
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R1", &[("A", "a"), ("B", "b")]),
            ("R2", &[("A", "a"), ("C", "c")]),
        ],
    )
    .unwrap();
    // Zero-step budget: the chase must trip before applying any rule.
    let guard = Guard::new(Budget::unlimited().with_max_chase_steps(0));
    let mut t = independence_reducible::chase::Tableau::of_state(&db, &state);
    let err = chase(&mut t, kd.full(), &guard).unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: Resource::ChaseSteps,
                ..
            }
        ),
        "{err}"
    );
    // Expired deadline: typed timeout.
    let guard = Guard::new(Budget::unlimited().with_timeout(Duration::ZERO));
    std::thread::sleep(Duration::from_millis(2));
    let mut t = independence_reducible::chase::Tableau::of_state(&db, &state);
    let err = chase(&mut t, kd.full(), &guard).unwrap_err();
    assert!(matches!(err, ExecError::TimedOut { .. }), "{err}");
    // Cancellation: typed, checked at the same checkpoints.
    let guard = Guard::unlimited();
    guard.cancel_token().cancel();
    let mut t = independence_reducible::chase::Tableau::of_state(&db, &state);
    let err = chase(&mut t, kd.full(), &guard).unwrap_err();
    assert!(matches!(err, ExecError::Cancelled), "{err}");
}

// ---------------------------------------------------------------------------
// Malformed inputs stay typed.
// ---------------------------------------------------------------------------

#[test]
fn fd_parse_errors_are_typed() {
    let u = Universe::of_chars("ABC");
    let err = FdSet::try_parse(&u, "AB>C").unwrap_err();
    assert!(format!("{err}").contains("expected `LHS->RHS`"));
    let err = FdSet::try_parse(&u, "AB->Z").unwrap_err();
    assert!(format!("{err}").contains("unknown attribute 'Z'"), "{err}");
    let err = FdSet::try_parse(&u, "->C").unwrap_err();
    assert!(format!("{err}").contains("empty"), "{err}");
    // The typed path agrees with the legacy panicking path on good input.
    let ok = FdSet::try_parse(&u, "AB->C, C->A").unwrap();
    assert!(ok.equivalent(&FdSet::parse(&u, "AB->C, C->A")));
}

#[test]
fn scheme_validation_errors_are_typed() {
    // Incomplete cover.
    let err = SchemeBuilder::new("ABC").scheme("R1", "AB", ["A"]).build();
    assert!(matches!(err, Err(RelationError::IncompleteCover)));
    // Key outside the scheme.
    let u = Universe::of_chars("AB");
    let err = RelationScheme::new("R", u.set_of("A"), vec![u.set_of("B")]);
    assert!(matches!(err, Err(RelationError::KeyNotEmbedded { .. })));
    // Errors render human-readably.
    let msg = format!("{}", err.unwrap_err());
    assert!(msg.contains("key"));
}

#[test]
fn maintainer_reports_inconsistent_base_state_block() {
    // IrMaintainer::new must refuse an inconsistent base state and name
    // the offending block in the typed error.
    let db = SchemeBuilder::new("ABCD")
        .scheme("R1", "AB", ["A"])
        .scheme("R2", "CD", ["C"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R2", &[("C", "c"), ("D", "d1")]),
            ("R2", &[("C", "c"), ("D", "d2")]), // C→D violated
        ],
    )
    .unwrap();
    let err = IrMaintainer::new(&db, &ir, &state, &Guard::unlimited()).unwrap_err();
    // R2 is its own (singleton) block; blocks are ordered like schemes.
    match err {
        ExecError::Inconsistent { detail } => {
            assert!(detail.contains("block 1"), "{detail}")
        }
        other => panic!("wrong error: {other}"),
    }
    assert_eq!(ir.partition[1], vec![1]);
    // The engine facade treats the same state as a verdict, not an error,
    // and points at the same block.
    let engine = Engine::new(db);
    let hub = engine.hub(&state, &Guard::unlimited()).unwrap();
    assert!(!hub.is_consistent());
    assert_eq!(hub.inconsistent_blocks(), vec![1]);
}

// ---------------------------------------------------------------------------
// Fault-injection matrix for Algorithms 2 and 5.
// ---------------------------------------------------------------------------

/// A triangle of two-attribute schemes — one key-equivalent, split-free
/// block, so both Algorithm 2 (via the rep) and Algorithm 5 (via the
/// state index) apply, and inserts issue several selections.
fn triangle() -> (DatabaseScheme, KeyDeps, IrScheme, DatabaseState, SymbolTable) {
    let db = SchemeBuilder::new("ABC")
        .scheme("R1", "AB", ["A", "B"])
        .scheme("R2", "BC", ["B", "C"])
        .scheme("R3", "AC", ["A", "C"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R1", &[("A", "a"), ("B", "b")]),
            ("R2", &[("B", "b"), ("C", "c")]),
        ],
    )
    .unwrap();
    (db, kd, ir, state, sym)
}

#[test]
fn algorithm2_fault_matrix() {
    let (db, _kd, ir, state, mut sym) = triangle();
    let g = Guard::unlimited();
    let rp = RetryPolicy::none();
    let m = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
    let rep = &m.reps()[0];
    let t = Tuple::from_pairs([
        (db.universe().attr_of("A"), sym.intern("a")),
        (db.universe().attr_of("C"), sym.intern("c")),
    ]);
    let baseline = algorithm2(&db, rep, 2, &t, &g, &rp).unwrap().0;
    assert!(baseline.is_consistent());

    // Transient fault, retried: identical to the fault-free run.
    let inj = FaultInjector::new(rep, FaultPlan::nth(1, FaultKind::Transient));
    let (outcome, _) =
        algorithm2(&db, &inj, 2, &t, &Guard::unlimited(), &RetryPolicy::retries(2)).unwrap();
    assert_eq!(outcome, baseline, "retried result must equal fault-free");
    assert_eq!(inj.faults_injected(), 1);

    // Transient fault, no retry budget: surfaces as Faulted{Transient}.
    let inj = FaultInjector::new(rep, FaultPlan::nth(1, FaultKind::Transient));
    let err =
        algorithm2(&db, &inj, 2, &t, &Guard::unlimited(), &RetryPolicy::none()).unwrap_err();
    match err {
        ExecError::Faulted {
            kind: FaultKind::Transient,
            attempts: 1,
            ..
        } => {}
        other => panic!("wrong error: {other}"),
    }

    // Permanent fault: never retried, surfaces immediately even with a
    // generous retry policy.
    let inj = FaultInjector::new(rep, FaultPlan::nth(1, FaultKind::Permanent));
    let err =
        algorithm2(&db, &inj, 2, &t, &Guard::unlimited(), &RetryPolicy::retries(5)).unwrap_err();
    match err {
        ExecError::Faulted {
            kind: FaultKind::Permanent,
            attempts: 1,
            ref operation,
        } => assert!(operation.contains("selection"), "{operation}"),
        ref other => panic!("wrong error: {other}"),
    }
    assert_eq!(inj.calls(), 1, "no retries after a permanent fault");

    // Exhausted lookup budget: typed BudgetExceeded, never a panic.
    let guard = Guard::new(Budget::unlimited().with_max_lookups(0));
    let err = algorithm2(&db, rep, 2, &t, &guard, &RetryPolicy::none()).unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: Resource::Lookups,
                ..
            }
        ),
        "{err}"
    );

    // Seeded flaky backend with retries: still converges to the baseline
    // (deterministically — the plan derives faults from the call number).
    let inj = FaultInjector::new(
        rep,
        FaultPlan::Seeded {
            seed: 0xFEED,
            pct: 40,
            kind: FaultKind::Transient,
        },
    );
    let (outcome, _) =
        algorithm2(&db, &inj, 2, &t, &Guard::unlimited(), &RetryPolicy::retries(10)).unwrap();
    assert_eq!(outcome, baseline);
}

#[test]
fn algorithm5_fault_matrix() {
    let (db, _kd, ir, state, mut sym) = triangle();
    let g = Guard::unlimited();
    let idx = StateIndex::build(&db, &ir.partition[0], &state).unwrap();
    let t = Tuple::from_pairs([
        (db.universe().attr_of("A"), sym.intern("a")),
        (db.universe().attr_of("C"), sym.intern("c")),
    ]);
    let baseline = algorithm5(&db, &idx, 2, &t, &g, &RetryPolicy::none()).unwrap().0;
    assert!(baseline.is_consistent());

    // Transient + retry: identical outcome.
    let inj = FaultInjector::new(&idx, FaultPlan::nth(1, FaultKind::Transient));
    let (outcome, _) =
        algorithm5(&db, &inj, 2, &t, &Guard::unlimited(), &RetryPolicy::retries(2)).unwrap();
    assert_eq!(outcome, baseline);
    assert_eq!(inj.faults_injected(), 1);

    // Permanent: typed Faulted.
    let inj = FaultInjector::new(&idx, FaultPlan::nth(1, FaultKind::Permanent));
    let err =
        algorithm5(&db, &inj, 2, &t, &Guard::unlimited(), &RetryPolicy::retries(5)).unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::Faulted {
                kind: FaultKind::Permanent,
                ..
            }
        ),
        "{err}"
    );

    // Budget exhaustion: typed, never a panic.
    let guard = Guard::new(Budget::unlimited().with_max_lookups(0));
    let err = algorithm5(&db, &idx, 2, &t, &guard, &RetryPolicy::none()).unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: Resource::Lookups,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn failed_insert_leaves_maintainer_unchanged() {
    let (db, kd, ir, state, mut sym) = triangle();
    let g = Guard::unlimited();
    let rp = RetryPolicy::none();
    let mut m = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
    let before: Vec<Tuple> = m.reps()[0].iter().cloned().collect();
    let t = Tuple::from_pairs([
        (db.universe().attr_of("A"), sym.intern("a")),
        (db.universe().attr_of("C"), sym.intern("c")),
    ]);
    // Decision phase trips the budget: nothing may have been applied.
    let guard = Guard::new(Budget::unlimited().with_max_lookups(0));
    let err = m.insert(2, t.clone(), &guard, &rp).unwrap_err();
    assert!(err.is_resource_exhaustion(), "{err}");
    let after: Vec<Tuple> = m.reps()[0].iter().cloned().collect();
    assert_eq!(before, after, "failed decision must not mutate the rep");
    // With an ample budget the same insert succeeds and matches a fresh
    // maintainer fed the same tuple.
    let mut m2 = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
    let (o1, _) = m.insert(2, t.clone(), &g, &rp).unwrap();
    let (o2, _) = m2.insert(2, t, &g, &rp).unwrap();
    assert_eq!(o1, o2);
    assert_eq!(
        m.total_projection(&kd, db.universe().set_of("AC"), &g).unwrap(),
        m2.total_projection(&kd, db.universe().set_of("AC"), &g).unwrap()
    );
}

#[test]
fn query_and_maintenance_agree_with_the_engine_on_random_workloads() {
    let mut master = SplitMix64::new(0xABCD);
    let mut exercised = 0;
    for case in 0..60 {
        let mut rng = master.split();
        let width = rng.gen_range_inclusive(3, 6);
        let n = rng.gen_range_inclusive(2, 5);
        let Some(db) =
            independence_reducible::workload::generators::random_scheme(&mut rng, width, n)
        else {
            continue;
        };
        let kd = KeyDeps::of(&db);
        let Some(ir) = recognize(&db, &kd).accepted() else {
            continue;
        };
        let mut sym = SymbolTable::new();
        let w = independence_reducible::workload::states::generate(
            &db,
            &mut sym,
            independence_reducible::workload::states::WorkloadConfig {
                entities: 8,
                fragment_pct: 50,
                inserts: 4,
                corrupt_pct: 40,
                seed: rng.next_u64(),
            },
        );
        exercised += 1;
        let guard = Guard::unlimited();
        // Query path: the Theorem 4.1 expressions against the engine's
        // session (which serves the same query through its expr cache).
        let x = db.scheme(rng.gen_range(0, db.len())).attrs();
        let direct = ir_total_projection(&db, &kd, &ir, &w.state, x, &guard).unwrap();
        let engine = Engine::new(db.clone());
        let via_engine = engine.total_projection(&w.state, x, &guard).unwrap();
        let consistent = is_consistent(&db, &w.state, kd.full(), &guard).unwrap();
        match via_engine {
            Some(rows) => {
                assert!(consistent, "case {case}");
                assert_eq!(rows, direct.sorted_tuples(), "case {case}: X = {x:?}");
            }
            None => assert!(!consistent, "case {case}"),
        }
        // Maintenance path: two maintainers fed the same stream agree.
        if consistent {
            let mut m1 = IrMaintainer::new(&db, &ir, &w.state, &guard).unwrap();
            let mut m2 = IrMaintainer::new(&db, &ir, &w.state, &guard).unwrap();
            for (i, t) in &w.inserts {
                let (o1, s1) = m1.insert(*i, t.clone(), &guard, &RetryPolicy::none()).unwrap();
                let (o2, s2) = m2
                    .insert(*i, t.clone(), &guard, &RetryPolicy::retries(3))
                    .unwrap();
                assert_eq!(o1, o2, "case {case}: insert {t:?} into {i}");
                assert_eq!(s1.lookups, s2.lookups, "case {case}: metering parity");
            }
        }
    }
    assert!(exercised > 10, "too few accepted schemes exercised ({exercised})");
}

#[test]
fn empty_state_everything_degrades_gracefully() {
    let db = SchemeBuilder::new("ABC")
        .scheme("R1", "AB", ["A", "B"])
        .scheme("R2", "BC", ["B", "C"])
        .scheme("R3", "AC", ["A", "C"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let empty = DatabaseState::empty(&db);
    let g = Guard::unlimited();
    let mut m = IrMaintainer::new(&db, &ir, &empty, &g).unwrap();
    // Queries on the empty state are empty.
    assert!(m
        .total_projection(&kd, db.universe().set_of("AC"), &g)
        .unwrap()
        .is_empty());
    // So is the engine's answer.
    let engine = Engine::new(db.clone());
    assert_eq!(
        engine
            .total_projection(&empty, db.universe().set_of("AC"), &g)
            .unwrap(),
        Some(Vec::new())
    );
    // The first insert into the empty state is always consistent.
    let mut sym = SymbolTable::new();
    let t = Tuple::from_pairs([
        (db.universe().attr_of("A"), sym.intern("a")),
        (db.universe().attr_of("B"), sym.intern("b")),
    ]);
    assert!(m
        .insert(0, t, &g, &RetryPolicy::none())
        .unwrap()
        .0
        .is_consistent());
}

#[test]
fn duplicate_insert_is_consistent_and_idempotent() {
    let db = SchemeBuilder::new("AB")
        .scheme("R1", "AB", ["A"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
    let g = Guard::unlimited();
    let rp = RetryPolicy::none();
    let mut m = IrMaintainer::new(&db, &ir, &state, &g).unwrap();
    let t = Tuple::from_pairs([
        (db.universe().attr_of("A"), sym.intern("a")),
        (db.universe().attr_of("B"), sym.intern("b")),
    ]);
    assert!(m.insert(0, t.clone(), &g, &rp).unwrap().0.is_consistent());
    assert!(m.insert(0, t, &g, &rp).unwrap().0.is_consistent());
    assert_eq!(m.reps()[0].len(), 1);
}

/// Theorem 5.4 directly: AUG of the baseline classes is accepted.
#[test]
fn theorem_5_4_augmented_baselines_accepted() {
    use independence_reducible::core::augment::augment;
    // AUG of an independent scheme (Example 1's S).
    let s = SchemeBuilder::new("CTHRSG")
        .scheme("S1", "HRCT", ["HR", "HT"])
        .scheme("S2", "CSG", ["CS"])
        .scheme("S3", "HSR", ["HS"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&s);
    let aug = augment(&s, &kd, "A1", s.universe().set_of("HR"));
    let kd2 = KeyDeps::of(&aug);
    assert!(recognize(&aug, &kd2).is_accepted());

    // AUG of a γ-acyclic BCNF chain.
    let c = SchemeBuilder::new("ABCD")
        .scheme("R1", "AB", ["A"])
        .scheme("R2", "BC", ["B"])
        .scheme("R3", "CD", ["C"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&c);
    assert!(independence_reducible::core::baselines::is_gamma_acyclic_bcnf(&c, &kd));
    let aug = augment(&c, &kd, "A1", c.universe().set_of("B"));
    let kd2 = KeyDeps::of(&aug);
    assert!(recognize(&aug, &kd2).is_accepted());
    // The augmentation itself is no longer γ-acyclic-relevant — the class
    // membership is preserved by Theorem 4.3, not by re-testing acyclicity.
}
