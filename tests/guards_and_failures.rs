//! Failure-injection and guard tests: the library must fail loudly and
//! predictably at its documented limits, and degrade correctly on
//! malformed or adversarial inputs.

use independence_reducible::core::query::minimal_lossless_covers;
use independence_reducible::prelude::*;
use independence_reducible::relation::RelationError;

#[test]
fn cover_family_guard_fires() {
    let u = Universe::of_chars("AB");
    let family = vec![u.set_of("AB"); 17];
    let fds = FdSet::new();
    let r = std::panic::catch_unwind(|| minimal_lossless_covers(&family, &fds, u.set_of("A")));
    assert!(r.is_err(), "families beyond the guard must panic, not hang");
}

#[test]
fn fd_projection_width_guard_fires() {
    let mut u = Universe::new();
    for i in 0..25 {
        u.add(&format!("A{i}")).unwrap();
    }
    let f = FdSet::new();
    let all = u.all();
    let r = std::panic::catch_unwind(|| independence_reducible::fd::project::project_fds(&f, all));
    assert!(r.is_err());
}

#[test]
fn subsets_guard_fires() {
    let mut u = Universe::new();
    for i in 0..30 {
        u.add(&format!("A{i}")).unwrap();
    }
    let all = u.all();
    let r = std::panic::catch_unwind(|| all.subsets().count());
    assert!(r.is_err());
}

#[test]
fn scheme_validation_errors_are_typed() {
    // Incomplete cover.
    let err = SchemeBuilder::new("ABC").scheme("R1", "AB", &["A"]).build();
    assert!(matches!(err, Err(RelationError::IncompleteCover)));
    // Key outside the scheme.
    let u = Universe::of_chars("AB");
    let err = RelationScheme::new("R", u.set_of("A"), vec![u.set_of("B")]);
    assert!(matches!(err, Err(RelationError::KeyNotEmbedded { .. })));
    // Errors render human-readably.
    let msg = format!("{}", err.unwrap_err());
    assert!(msg.contains("key"));
}

#[test]
fn maintainer_reports_inconsistent_base_state_block() {
    // IrMaintainer::new must refuse an inconsistent base state and name
    // the offending block.
    let db = SchemeBuilder::new("ABCD")
        .scheme("R1", "AB", &["A"])
        .scheme("R2", "CD", &["C"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R2", &[("C", "c"), ("D", "d1")]),
            ("R2", &[("C", "c"), ("D", "d2")]), // C→D violated
        ],
    )
    .unwrap();
    let err = IrMaintainer::new(&db, &ir, &state).unwrap_err();
    // R2 is its own (singleton) block; blocks are ordered like schemes.
    assert_eq!(ir.partition[err], vec![1]);
}

#[test]
fn empty_state_everything_degrades_gracefully() {
    let db = SchemeBuilder::new("ABC")
        .scheme("R1", "AB", &["A", "B"])
        .scheme("R2", "BC", &["B", "C"])
        .scheme("R3", "AC", &["A", "C"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let empty = DatabaseState::empty(&db);
    let mut m = IrMaintainer::new(&db, &ir, &empty).unwrap();
    // Queries on the empty state are empty.
    assert!(m.total_projection(&kd, db.universe().set_of("AC")).is_empty());
    // The first insert into the empty state is always consistent.
    let mut sym = SymbolTable::new();
    let t = Tuple::from_pairs([
        (db.universe().attr_of("A"), sym.intern("a")),
        (db.universe().attr_of("B"), sym.intern("b")),
    ]);
    assert!(m.insert(0, t).0.is_consistent());
}

#[test]
fn duplicate_insert_is_consistent_and_idempotent() {
    let db = SchemeBuilder::new("AB")
        .scheme("R1", "AB", &["A"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(&db, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
    let mut m = IrMaintainer::new(&db, &ir, &state).unwrap();
    let t = Tuple::from_pairs([
        (db.universe().attr_of("A"), sym.intern("a")),
        (db.universe().attr_of("B"), sym.intern("b")),
    ]);
    assert!(m.insert(0, t.clone()).0.is_consistent());
    assert!(m.insert(0, t).0.is_consistent());
    assert_eq!(m.reps()[0].len(), 1);
}

/// Theorem 5.4 directly: AUG of the baseline classes is accepted.
#[test]
fn theorem_5_4_augmented_baselines_accepted() {
    use independence_reducible::core::augment::augment;
    // AUG of an independent scheme (Example 1's S).
    let s = SchemeBuilder::new("CTHRSG")
        .scheme("S1", "HRCT", &["HR", "HT"])
        .scheme("S2", "CSG", &["CS"])
        .scheme("S3", "HSR", &["HS"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&s);
    let aug = augment(&s, &kd, "A1", s.universe().set_of("HR"));
    let kd2 = KeyDeps::of(&aug);
    assert!(recognize(&aug, &kd2).is_accepted());

    // AUG of a γ-acyclic BCNF chain.
    let c = SchemeBuilder::new("ABCD")
        .scheme("R1", "AB", &["A"])
        .scheme("R2", "BC", &["B"])
        .scheme("R3", "CD", &["C"])
        .build()
        .unwrap();
    let kd = KeyDeps::of(&c);
    assert!(independence_reducible::core::baselines::is_gamma_acyclic_bcnf(&c, &kd));
    let aug = augment(&c, &kd, "A1", c.universe().set_of("B"));
    let kd2 = KeyDeps::of(&aug);
    assert!(recognize(&aug, &kd2).is_accepted());
    // The augmentation itself is no longer γ-acyclic-relevant — the class
    // membership is preserved by Theorem 4.3, not by re-testing acyclicity.
}
