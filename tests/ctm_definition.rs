//! The formal ctm definition of §2.7, checked against Algorithm 5's
//! actual behaviour:
//!
//! 1. **Single-tuple**: every selection Algorithm 5 issues returns at most
//!    one tuple (it uses key-equality lookups over locally consistent
//!    relations).
//! 2. **Definedness**: each selection's constants come from the inserted
//!    tuple or from tuples returned by earlier selections
//!    (`CST(Φᵢ) ⊆ CST({t} ∪ σ_{Φ1}(…) ∪ … ∪ σ_{Φi−1}(…))`).
//! 3. **Constancy**: the number of selections depends only on `R` and `F`
//!    — across states of wildly different sizes the trace length for a
//!    given (scheme, insert-shape) stays within a fixed bound.

use std::collections::HashSet;

use independence_reducible::core::maintain::{algorithm5_traced, StateIndex};
use independence_reducible::core::recognition::recognize;
use independence_reducible::prelude::*;
use independence_reducible::workload::generators;
use independence_reducible::workload::states::{generate, WorkloadConfig};

fn split_free_families() -> Vec<DatabaseScheme> {
    vec![
        generators::chain_scheme(6),
        generators::cycle_scheme(5),
        generators::star_scheme(4),
        generators::block_chain_scheme(2, 4),
    ]
}

#[test]
fn selection_sequences_are_defined_on_the_instance() {
    for db in split_free_families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let mut sym = SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 40,
                fragment_pct: 60,
                inserts: 25,
                corrupt_pct: 40,
                seed: 99,
            },
        );
        for (i, t) in &w.inserts {
            let b = ir.block_of[*i];
            let idx = StateIndex::build(&db, &ir.partition[b], &w.state).unwrap();
            let (_, _, trace) = algorithm5_traced(&db, &idx, *i, t);
            // Known constants start as CST(t) and grow with each result.
            let mut known: HashSet<Value> = t.constants().into_iter().collect();
            for (step_no, step) in trace.iter().enumerate() {
                for v in &step.values {
                    assert!(
                        known.contains(v),
                        "step {step_no} of the trace uses a constant not yet retrieved"
                    );
                }
                if let Some(p) = &step.result {
                    known.extend(p.constants());
                }
            }
        }
    }
}

#[test]
fn trace_length_is_independent_of_state_size() {
    for db in split_free_families() {
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        // For each scheme, insert a fresh-entity tuple into states of
        // growing size and record the trace length.
        let mut lengths_per_scheme: Vec<HashSet<usize>> = vec![HashSet::new(); db.len()];
        for entities in [10usize, 100, 1000] {
            let mut sym = SymbolTable::new();
            let w = generate(
                &db,
                &mut sym,
                WorkloadConfig {
                    entities,
                    fragment_pct: 60,
                    inserts: 0,
                    corrupt_pct: 0,
                    seed: 5,
                },
            );
            for (i, lens) in lengths_per_scheme.iter_mut().enumerate() {
                let t = independence_reducible::workload::states::entity_tuple(
                    &db,
                    &mut sym,
                    entities + 1,
                )
                .project(db.scheme(i).attrs());
                let b = ir.block_of[i];
                let idx = StateIndex::build(&db, &ir.partition[b], &w.state).unwrap();
                let (_, stats, trace) = algorithm5_traced(&db, &idx, i, &t);
                assert_eq!(stats.lookups, trace.len());
                lens.insert(trace.len());
            }
        }
        // A fresh-entity insert sees the same misses regardless of how big
        // the state is: the trace length is a function of (R, F, scheme).
        for (i, lens) in lengths_per_scheme.iter().enumerate() {
            assert_eq!(
                lens.len(),
                1,
                "scheme {i}: trace length varied with state size: {lens:?}"
            );
        }
    }
}

#[test]
fn selections_are_single_tuple() {
    // StateIndex lookups return at most one tuple by construction; this
    // asserts the *observable* contract on a workload with heavy key
    // sharing.
    let db = generators::cycle_scheme(4);
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let w = generate(
        &db,
        &mut sym,
        WorkloadConfig {
            entities: 60,
            fragment_pct: 90,
            inserts: 15,
            corrupt_pct: 0,
            seed: 123,
        },
    );
    for (i, t) in &w.inserts {
        let b = ir.block_of[*i];
        let idx = StateIndex::build(&db, &ir.partition[b], &w.state).unwrap();
        let (_, _, trace) = algorithm5_traced(&db, &idx, *i, t);
        for step in trace {
            if let Some(p) = step.result {
                // The returned tuple really matches the formula.
                for (a, v) in step.key.iter().zip(step.values.iter()) {
                    assert_eq!(p.value(a), *v);
                }
            }
        }
    }
}
