//! EX1–EX13: every claim the paper makes in its worked examples, asserted
//! mechanically (EXPERIMENTS.md, experiment ids EX*).

use independence_reducible::core::kep::key_equivalent_partition;
use independence_reducible::core::maintain::{algorithm2, IrMaintainer};
use independence_reducible::core::query::minimal_lossless_covers;
use independence_reducible::core::split::split_keys;
use independence_reducible::hypergraph::{gamma, gyo, Hypergraph};
use independence_reducible::prelude::*;
use independence_reducible::workload::fixtures;

/// Every fixture's stated expectations hold.
#[test]
fn all_fixture_expectations_hold() {
    for f in independence_reducible::workload::paper_examples() {
        let c = classify(&f.scheme);
        let kd = KeyDeps::of(&f.scheme);
        let name = f.name;
        if let Some(want) = f.expect.independent {
            assert_eq!(c.independent, want, "{name}: independent");
        }
        if let Some(want) = f.expect.gamma_acyclic {
            assert_eq!(c.gamma_acyclic, want, "{name}: γ-acyclic");
        }
        if let Some(want) = f.expect.alpha_acyclic {
            assert_eq!(
                gyo::is_alpha_acyclic(&Hypergraph::of_scheme(&f.scheme)),
                want,
                "{name}: α-acyclic"
            );
        }
        if let Some(want) = f.expect.key_equivalent {
            assert_eq!(c.key_equivalent, want, "{name}: key-equivalent");
        }
        if let Some(want) = f.expect.independence_reducible {
            assert_eq!(
                c.independence_reducible.is_some(),
                want,
                "{name}: independence-reducible"
            );
        }
        if let Some(want) = f.expect.split_free {
            let all: Vec<usize> = (0..f.scheme.len()).collect();
            let actual = split_keys(&f.scheme, &kd, &all).is_empty();
            assert_eq!(actual, want, "{name}: split-free");
        }
        if let Some(want) = f.expect.ctm {
            assert_eq!(c.ctm, Some(want), "{name}: ctm");
        }
        if let Some(want) = f.expect.bounded {
            if want {
                assert_eq!(c.bounded, Some(true), "{name}: bounded");
            }
        }
        if let Some(want) = f.expect.algebraic_maintainable {
            if want {
                assert_eq!(c.algebraic_maintainable, Some(true), "{name}: alg-maint");
            } else {
                // The paper proves Example 2 is NOT algebraic-maintainable;
                // our classifier reports None (outside the decided class) —
                // it must at least not claim true.
                assert_ne!(c.algebraic_maintainable, Some(true), "{name}: alg-maint");
            }
        }
    }
}

/// EX1: R and S of Example 1 embed equivalent key-dependency sets.
#[test]
fn ex1_r_and_s_embed_the_same_constraints() {
    let r = fixtures::example1_r().scheme;
    let s = fixtures::example1_s().scheme;
    let kd_r = KeyDeps::of(&r);
    let kd_s = KeyDeps::of(&s);
    assert!(kd_r.full().equivalent(kd_s.full()));
    // And R's induced scheme D is exactly S (up to naming).
    let ir = recognize(&r, &kd_r).accepted().unwrap();
    let d = independence_reducible::core::recognition::induced_scheme(&r, &ir);
    let mut d_attrs: Vec<AttrSet> = d.schemes().iter().map(|x| x.attrs()).collect();
    let mut s_attrs: Vec<AttrSet> = s.schemes().iter().map(|x| x.attrs()).collect();
    d_attrs.sort();
    s_attrs.sort();
    assert_eq!(d_attrs, s_attrs);
}

/// EX3: Example 3's remark — with cyclic keys the scheme is key-equivalent
/// although its hypergraph is the (cyclic) triangle.
#[test]
fn ex3_triangle() {
    let f = fixtures::example3();
    let h = Hypergraph::of_scheme(&f.scheme);
    assert!(!gamma::is_gamma_acyclic(&h));
    assert!(gamma::find_gamma_cycle(&h).is_some());
}

/// EX4: the lossless covers behind the paper's [AE] expression, plus the
/// cover the paper's expression misses (π_AE(EB ⋈ EC ⋈ BCD ⋈ DA)), which
/// the chase confirms is required for exactness.
#[test]
fn ex4_ae_covers() {
    let f = fixtures::example4();
    let kd = KeyDeps::of(&f.scheme);
    let family: Vec<AttrSet> = f.scheme.schemes().iter().map(|s| s.attrs()).collect();
    let x = f.scheme.universe().set_of("AE");
    let covers = minimal_lossless_covers(&family, kd.full(), x, &Guard::unlimited()).unwrap();
    assert!(covers.contains(&vec![2]), "R3");
    assert!(covers.contains(&vec![0, 1, 3, 4]), "AB ⋈ AC ⋈ EB ⋈ EC");
    assert!(
        covers.contains(&vec![3, 4, 5, 6]),
        "EB ⋈ EC ⋈ BCD ⋈ DA — derivable but absent from the paper's expression"
    );

    // Witness state: only the third cover's relations are populated, yet
    // [AE] is nonempty — the paper's two-disjunct expression would return
    // nothing.
    let mut sym = SymbolTable::new();
    let state = state_of(
        &f.scheme,
        &mut sym,
        &[
            ("R4", &[("E", "e"), ("B", "b")]),
            ("R5", &[("E", "e"), ("C", "c")]),
            ("R6", &[("B", "b"), ("C", "c"), ("D", "d")]),
            ("R7", &[("D", "d"), ("A", "a")]),
        ],
    )
    .unwrap();
    let oracle = total_projection(&f.scheme, &state, kd.full(), x, &Guard::unlimited())
        .unwrap()
        .unwrap();
    assert_eq!(oracle.len(), 1, "the chase derives <a, e>");
}

/// EX5/EX7: the split scheme's representative instance and Algorithm 2
/// rejection, exactly as traced in Example 7.
#[test]
fn ex7_algorithm2_trace() {
    let f = fixtures::example4();
    let kd = KeyDeps::of(&f.scheme);
    let ir = recognize(&f.scheme, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &f.scheme,
        &mut sym,
        &[
            ("R1", &[("A", "a"), ("B", "b")]),
            ("R2", &[("A", "a"), ("C", "c")]),
            ("R4", &[("E", "e1"), ("B", "b")]),
            ("R4", &[("E", "e2"), ("B", "b")]),
            ("R5", &[("E", "e1"), ("C", "c")]),
        ],
    )
    .unwrap();
    let g = Guard::unlimited();
    let m = IrMaintainer::new(&f.scheme, &ir, &state, &g).unwrap();
    // The rep instance contains <a, b, c, e1> (merged through keys A, E
    // and BC) — the total tuple Example 7's selection returns.
    let u = f.scheme.universe();
    let target = Tuple::from_pairs([
        (u.attr_of("A"), sym.intern("a")),
        (u.attr_of("B"), sym.intern("b")),
        (u.attr_of("C"), sym.intern("c")),
        (u.attr_of("E"), sym.intern("e1")),
    ]);
    assert!(m.reps()[0].iter().any(|t| *t == target));
    // Inserting <a, e> into R3 is rejected.
    let bad = Tuple::from_pairs([
        (u.attr_of("A"), sym.intern("a")),
        (u.attr_of("E"), sym.intern("e")),
    ]);
    let (outcome, _) =
        algorithm2(&f.scheme, &m.reps()[0], 2, &bad, &g, &RetryPolicy::none()).unwrap();
    assert!(!outcome.is_consistent());
}

/// EX6: the paper's exact Algorithm 2 trace, including the accepting tuple
/// q = <a, b, c, d, e'> being refuted at key CD.
#[test]
fn ex6_rejection_at_key_cd() {
    let f = fixtures::example6();
    let kd = KeyDeps::of(&f.scheme);
    let ir = recognize(&f.scheme, &kd).accepted().unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &f.scheme,
        &mut sym,
        &[
            ("R2", &[("A", "a"), ("C", "c")]),
            ("R5", &[("B", "b"), ("D", "d")]),
            ("R6", &[("C", "c"), ("D", "d"), ("E", "e")]),
        ],
    )
    .unwrap();
    let g = Guard::unlimited();
    let m = IrMaintainer::new(&f.scheme, &ir, &state, &g).unwrap();
    let u = f.scheme.universe();
    let bad = Tuple::from_pairs([
        (u.attr_of("A"), sym.intern("a")),
        (u.attr_of("B"), sym.intern("b")),
        (u.attr_of("E"), sym.intern("e'")),
    ]);
    let (outcome, stats) =
        algorithm2(&f.scheme, &m.reps()[0], 0, &bad, &g, &RetryPolicy::none()).unwrap();
    assert!(!outcome.is_consistent());
    // Keys A, B, E are processed before CD becomes embedded in the
    // closure; the rejection happens on the fourth key.
    assert_eq!(stats.keys_processed, 4);
}

/// EX8: the split pattern of Example 8, key BC split in exactly R1⁺, R2⁺
/// and R5⁺.
#[test]
fn ex8_split_pattern() {
    let f = fixtures::example8();
    let kd = KeyDeps::of(&f.scheme);
    let all: Vec<usize> = (0..f.scheme.len()).collect();
    let splits = split_keys(&f.scheme, &kd, &all);
    assert_eq!(splits.len(), 1);
    assert_eq!(splits[0].key, f.scheme.universe().set_of("BC"));
    assert_eq!(splits[0].split_in, vec![0, 1, 4]);
}

/// EX11: the independence-reducible partition of Example 11, and the
/// block-level independence of the induced scheme.
#[test]
fn ex11_partition_and_induced_independence() {
    let f = fixtures::example11();
    let kd = KeyDeps::of(&f.scheme);
    let ir = recognize(&f.scheme, &kd).accepted().unwrap();
    assert_eq!(ir.partition, vec![vec![0, 1, 2, 3], vec![4, 5]]);
    let d = independence_reducible::core::recognition::induced_scheme(&f.scheme, &ir);
    let kd_d = KeyDeps::of(&d);
    assert!(independence_reducible::core::baselines::is_independent(&d, &kd_d));
}

/// EX13: the KEP trace of Example 13.
#[test]
fn ex13_kep_partition() {
    let f = fixtures::example13();
    let kd = KeyDeps::of(&f.scheme);
    let part = key_equivalent_partition(&f.scheme, &kd);
    assert_eq!(part, vec![vec![0, 2, 3], vec![1, 4, 5, 6], vec![7]]);
}

/// EX2: the scheme of Example 2 is rejected, and the adversarial chain
/// state demonstrates the unbounded refutation.
#[test]
fn ex2_rejection_and_adversarial_state() {
    use independence_reducible::workload::generators;
    let db = generators::example2_scheme();
    let kd = KeyDeps::of(&db);
    assert!(!recognize(&db, &kd).is_accepted());
    for n in [2usize, 6] {
        let mut sym = SymbolTable::new();
        let (state, bad) = generators::example2_adversarial_state(&db, &mut sym, n);
        assert!(is_consistent(&db, &state, kd.full(), &Guard::unlimited()).unwrap());
        // Every proper prefix of the chain stays consistent with the
        // insert; only the full state refutes it.
        let mut updated = state.clone();
        updated.insert(2, bad).unwrap();
        assert!(!is_consistent(&db, &updated, kd.full(), &Guard::unlimited()).unwrap());
    }
}
