//! Golden-trace and provenance integration tests for the observability
//! layer (`crates/obs`).
//!
//! The determinism contract under test: trace streams contain no clocks,
//! addresses or other run-dependent data, and under block-parallel
//! evaluation every block writes to its own shard, merged in block order
//! at the join barrier. Serial re-runs are therefore byte-stable, and
//! parallel runs produce *identical* streams to serial ones — a stronger
//! property than the multiset equality the sharding argument needs.

use std::sync::Arc;

use independence_reducible::exec::Guard;
use independence_reducible::prelude::*;
use independence_reducible::workload::fixtures::{example1_r, example3, paper_examples};
use independence_reducible::workload::generators::{block_chain_scheme, star_scheme};
use independence_reducible::workload::states::{generate, WorkloadConfig};

fn traced_engine(
    db: DatabaseScheme,
    parallel: bool,
    provenance: bool,
) -> (Engine, Arc<EventLog>) {
    let log = Arc::new(EventLog::new(1 << 18));
    let engine = Engine::new(db)
        .with_parallel(parallel)
        .with_observability(Observability {
            tracer: TraceHandle::to_log(Arc::clone(&log)),
            metrics: None,
            provenance,
        });
    (engine, log)
}

/// One full traced workout — hub build, insert stream (some inserts
/// corrupted, so both verdicts appear), one epoch-publishing query —
/// rendered to JSON lines.
fn trace_of(db: &DatabaseScheme, parallel: bool) -> Vec<String> {
    let mut sym = SymbolTable::new();
    let w = generate(
        db,
        &mut sym,
        WorkloadConfig {
            entities: 6,
            fragment_pct: 70,
            inserts: 8,
            corrupt_pct: 25,
            seed: 0xC0FFEE,
        },
    );
    let (engine, log) = traced_engine(db.clone(), parallel, false);
    let g = Guard::unlimited();
    let hub = engine.hub(&w.state, &g).expect("unlimited guard");
    let writer = hub.write_handle();
    for (i, t) in &w.inserts {
        let _ = writer.insert(*i, t.clone(), &g).expect("unlimited guard");
    }
    let _ = hub
        .read_view()
        .total_projection(db.scheme(0).attrs(), &g)
        .expect("unlimited guard");
    log.drain().iter().map(|e| e.to_json()).collect()
}

#[test]
fn serial_traces_are_byte_stable_across_runs() {
    for fx in paper_examples() {
        let first = trace_of(&fx.scheme, false);
        let second = trace_of(&fx.scheme, false);
        assert!(!first.is_empty(), "{}: empty trace", fx.name);
        assert_eq!(first, second, "{}: serial trace not byte-stable", fx.name);
    }
}

#[test]
fn parallel_streams_are_identical_to_serial() {
    for fx in paper_examples() {
        let serial = trace_of(&fx.scheme, false);
        let parallel = trace_of(&fx.scheme, true);
        assert_eq!(
            serial, parallel,
            "{}: parallel trace diverged from serial",
            fx.name
        );
    }
}

#[test]
fn traces_start_with_the_scheme_verdicts() {
    for fx in paper_examples() {
        let trace = trace_of(&fx.scheme, true);
        assert!(
            trace[0].starts_with(r#"{"type":"recognition_done""#),
            "{}: {}",
            fx.name,
            trace[0]
        );
        let accepted = trace[0].contains(r#""accepted":true"#);
        assert_eq!(
            accepted,
            trace[1].starts_with(r#"{"type":"kep_computed""#),
            "{}: kep_computed must follow acceptance exactly",
            fx.name
        );
    }
}

#[test]
fn example3_rejection_names_the_violated_key_dependency() {
    // Example 3: the all-keys triangle {AB, BC, AC}. a1 already
    // determines b1 through R1's key A, so inserting (a1, b2) must be
    // rejected, and the explanation must name A→B with both witnesses.
    let fx = example3();
    let db = fx.scheme;
    let u = db.universe().clone();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R1", &[("A", "a1"), ("B", "b1")][..]),
            ("R2", &[("B", "b1"), ("C", "c1")][..]),
            ("R3", &[("A", "a1"), ("C", "c1")][..]),
        ],
    )
    .unwrap();
    let (engine, log) = traced_engine(db.clone(), true, true);
    let g = Guard::unlimited();
    let hub = engine.hub(&state, &g).unwrap();
    let writer = hub.write_handle();
    assert!(hub.is_consistent());
    let bad = Tuple::from_pairs([
        (u.attr("A").unwrap(), sym.intern("a1")),
        (u.attr("B").unwrap(), sym.intern("b2")),
    ]);
    assert!(!writer.insert(0, bad, &g).unwrap(), "insert must be rejected");
    let r = hub.explain_rejection().expect("rejection recorded");
    assert_eq!(r.fd.render(&u), "A→B");
    assert_eq!(u.name(r.column), "B");
    // The probed witness is the speculative insert into R1 (index 0);
    // the resident witness is whichever state row represents a1's class
    // (R3's row in practice — its B-null was equated to b1 first).
    assert_eq!(r.tags.1, Some(0));
    assert!(r.tags.0.is_some(), "resident witness must be a state row");
    // The key is a single base column: agreement needs no fd firings.
    assert_eq!(r.lhs.len(), 1);
    assert_eq!(u.name(r.lhs[0].0), "A");
    assert!(r.lhs[0].1.is_empty() && r.lhs[0].2.is_empty());
    // The trace stream carries the same verdict.
    let events = log.drain();
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::StateRejected { violating_fd, column, .. }
                if violating_fd.as_ref() == "A→B" && column.as_ref() == "B"
        )),
        "no state_rejected event naming A→B"
    );
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::InsertApplied { accepted: false, .. }
    )));
}

#[test]
fn university_derived_cell_has_the_exact_firing_chain() {
    // Example 1: R2 records (h1, t1, r1) without a course; R1's HR→C and
    // HR→T link it to R1's row, so the T cell of the (c1, t1, h1) answer
    // is derived, not given.
    let fx = example1_r();
    let db = fx.scheme;
    let u = db.universe().clone();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R1", &[("H", "h1"), ("R", "r1"), ("C", "c1")][..]),
            ("R2", &[("H", "h1"), ("T", "t1"), ("R", "r1")][..]),
        ],
    )
    .unwrap();
    let (engine, _log) = traced_engine(db.clone(), true, true);
    let g = Guard::unlimited();
    let hub = engine.hub(&state, &g).unwrap();
    let x = u.set_of("HTC");
    let answers = hub
        .read_view()
        .total_projection(x, &g)
        .unwrap()
        .expect("consistent");
    assert_eq!(answers.len(), 1);
    let exp = hub.explain(x, &answers[0]).expect("witness row exists");
    assert_eq!(exp.tag, Some(0), "witness is R1's row");
    for cell in &exp.cells {
        match u.name(cell.column) {
            // H and C are base constants of R1's own tuple.
            "H" | "C" => assert!(cell.chain.is_empty(), "H/C must be given"),
            // T reached R1's row through exactly one firing of HR→T.
            "T" => {
                assert_eq!(cell.chain.len(), 1, "T needs exactly one firing");
                let f = &cell.chain[0];
                assert_eq!(f.fd.render(&u), "HR→T");
                assert_eq!(u.name(f.column), "T");
                assert_eq!(
                    (f.tags.0.is_some(), f.tags.1.is_some()),
                    (true, true),
                    "both firing rows are state rows"
                );
            }
            other => panic!("unexpected cell column {other}"),
        }
    }
    // Without provenance the same witness is found but chains are empty.
    let plain = Engine::new(db.clone()).with_parallel(true);
    let plain_hub = plain.hub(&state, &g).unwrap();
    let exp = plain_hub.explain(x, &answers[0]).expect("witness");
    assert!(exp.cells.iter().all(|c| c.chain.is_empty()));
}

/// Named `(name, value)` lists: clock-free counters, gauges, and
/// histogram observation counts, in registry order.
type DeterministicMetrics = (Vec<(String, u64)>, Vec<(String, u64)>, Vec<(String, u64)>);

/// The same traced workout as [`trace_of`], but through a metrics
/// registry, keeping only the clock-free parts of the snapshot: counters
/// whose name carries no `_us` suffix, every gauge, and each histogram's
/// observation *count* (sums and bucket placement of latency histograms
/// are wall-clock).
fn deterministic_metrics(db: &DatabaseScheme, parallel: bool) -> DeterministicMetrics {
    let mut sym = SymbolTable::new();
    let w = generate(
        db,
        &mut sym,
        WorkloadConfig {
            entities: 6,
            fragment_pct: 70,
            inserts: 8,
            corrupt_pct: 25,
            seed: 0xC0FFEE,
        },
    );
    let registry = Arc::new(MetricsRegistry::new());
    let engine = Engine::new(db.clone())
        .with_parallel(parallel)
        .with_observability(Observability {
            tracer: TraceHandle::none(),
            metrics: Some(Arc::clone(&registry)),
            provenance: false,
        });
    let g = Guard::unlimited();
    let hub = engine.hub(&w.state, &g).expect("unlimited guard");
    let writer = hub.write_handle();
    for (i, t) in &w.inserts {
        let _ = writer.insert(*i, t.clone(), &g).expect("unlimited guard");
    }
    let _ = hub
        .read_view()
        .total_projection(db.scheme(0).attrs(), &g)
        .expect("unlimited guard");
    let snap = registry.snapshot();
    let counters = snap
        .counters
        .into_iter()
        .filter(|(n, _)| !n.contains("_us"))
        .collect();
    let gauges = snap.gauges;
    let hist_counts = snap
        .histograms
        .into_iter()
        .map(|h| (h.name, h.count))
        .collect();
    (counters, gauges, hist_counts)
}

/// PR 8's extension of the determinism contract to derived metrics:
/// every deterministic counter (session verdicts, chase work, per-block
/// lane ops), every gauge (epoch, epoch lag, guard spend) and every
/// histogram's observation count must be equal between a serial and a
/// block-parallel run — across the 11 paper fixtures plus two synthetic
/// multi-block schemes. Only latency *values* (the `_us` sums and bucket
/// placements) are allowed to differ.
#[test]
fn serial_and_parallel_runs_agree_on_every_deterministic_metric() {
    let mut fixtures: Vec<(String, DatabaseScheme)> = paper_examples()
        .into_iter()
        .map(|fx| (fx.name.to_string(), fx.scheme))
        .collect();
    fixtures.push(("block_chain(4,3)".to_string(), block_chain_scheme(4, 3)));
    fixtures.push(("star(4)".to_string(), star_scheme(4)));
    assert_eq!(fixtures.len(), 13, "fixture roster drifted");
    for (name, db) in &fixtures {
        let serial = deterministic_metrics(db, false);
        let parallel = deterministic_metrics(db, true);
        assert!(
            !serial.0.is_empty(),
            "{name}: no clock-free counters recorded"
        );
        assert_eq!(serial.0, parallel.0, "{name}: counters diverged");
        assert_eq!(serial.1, parallel.1, "{name}: gauges diverged");
        assert_eq!(
            serial.2, parallel.2,
            "{name}: histogram observation counts diverged"
        );
    }
}

#[test]
fn metrics_registry_counts_session_operations() {
    let fx = example1_r();
    let db = fx.scheme;
    let u = db.universe().clone();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R1", &[("H", "h1"), ("R", "r1"), ("C", "c1")][..]),
            ("R2", &[("H", "h1"), ("T", "t1"), ("R", "r1")][..]),
        ],
    )
    .unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let engine = Engine::new(db.clone()).with_observability(Observability {
        tracer: TraceHandle::none(),
        metrics: Some(Arc::clone(&registry)),
        provenance: false,
    });
    let g = Guard::unlimited();
    let hub = engine.hub(&state, &g).unwrap();
    let writer = hub.write_handle();
    let ok = Tuple::from_pairs([
        (u.attr("C").unwrap(), sym.intern("c1")),
        (u.attr("S").unwrap(), sym.intern("s1")),
        (u.attr("G").unwrap(), sym.intern("g1")),
    ]);
    assert!(writer.insert(3, ok, &g).unwrap());
    let bad = Tuple::from_pairs([
        (u.attr("H").unwrap(), sym.intern("h1")),
        (u.attr("R").unwrap(), sym.intern("r1")),
        (u.attr("C").unwrap(), sym.intern("c9")),
    ]);
    assert!(!writer.insert(0, bad, &g).unwrap());
    let _ = hub.read_view().total_projection(u.set_of("HTC"), &g).unwrap();
    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("session.builds"), 1);
    assert_eq!(counter("session.inserts_accepted"), 1);
    assert_eq!(counter("session.inserts_rejected"), 1);
    assert_eq!(counter("session.queries"), 1);
    assert!(counter("chase.rule_applications") >= 1);
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "session.insert_us")
        .expect("insert latency histogram");
    assert_eq!(hist.count, 2);
    let json = snap.to_json();
    assert!(json.starts_with(r#"{"counters":{"#), "{json}");
}
