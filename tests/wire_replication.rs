//! Networked replication suite (docs/WIRE.md): real `idr serve`
//! processes exchanging protocol frames over loopback TCP.
//!
//! * The worked byte-level example in docs/WIRE.md §7 must match the
//!   encoder bit for bit — the spec is executable.
//! * Two separate `idr serve --peer` processes, each journalling its
//!   own client ops, converge to byte-identical digests and state.
//! * A peer serving a different scheme is rejected at the handshake
//!   and the initiating process exits with code 7, before any op
//!   crosses the wire.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use independence_reducible::relation::parse::parse_scheme;
use independence_reducible::store::TempDir;
use independence_reducible::sync::{scheme_digest, Hello, WireMsg};

const IDR: &str = env!("CARGO_BIN_EXE_idr");

const UNIVERSITY: &str = include_str!("../examples/schemes/university.scm");

/// docs/WIRE.md promises its worked example is checked against the
/// encoder. This is that check: extract the hex block under "Full
/// frame" in §7 and compare with the bytes `Hello::new(0, 2, …)`
/// actually produces for the Example 1 scheme.
#[test]
fn wire_md_worked_example_matches_the_encoder() {
    let spec = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/WIRE.md"))
        .expect("docs/WIRE.md");
    let after = spec
        .split_once("Full frame (8-byte header + payload), as hex:")
        .expect("WIRE.md §7 hex block heading")
        .1;
    let block = after
        .split_once("```text")
        .expect("hex fence opens")
        .1
        .split_once("```")
        .expect("hex fence closes")
        .0;
    let hex: String = block.chars().filter(|c| c.is_ascii_hexdigit()).collect();
    let documented: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect();

    let db = parse_scheme(UNIVERSITY).expect("example scheme parses");
    assert_eq!(
        scheme_digest(&db),
        0x3616_ce1e,
        "scheme digest documented in WIRE.md §7"
    );
    let frame = WireMsg::Hello(Hello::new(0, 2, &db)).encode_frame();
    assert_eq!(
        documented, frame,
        "WIRE.md §7 worked example drifted from the encoder"
    );
}

/// One spawned `idr serve` peer process with line-buffered stdio.
struct Peer {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Peer {
    fn spawn(dir: &std::path::Path, args: &[&str]) -> Peer {
        let mut child = Command::new(IDR)
            .arg("serve")
            .arg("--data-dir")
            .arg(dir)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn idr serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Peer { child, stdin, stdout }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("peer stdin");
        self.stdin.flush().expect("peer stdin flush");
    }

    /// Reads lines until one starts with `prefix`, returning it.
    fn read_until(&mut self, prefix: &str) -> String {
        loop {
            let mut line = String::new();
            let n = self.stdout.read_line(&mut line).expect("peer stdout");
            assert!(n > 0, "peer closed stdout awaiting {prefix:?}");
            if line.starts_with(prefix) {
                return line.trim_end().to_string();
            }
        }
    }

    fn quit_ok(mut self) {
        self.send("quit");
        drop(self.stdin);
        let status = self.child.wait().expect("peer exit");
        assert!(status.success(), "peer exited with {status:?}");
    }
}

fn init_dir(label: &str, scheme: &str) -> TempDir {
    let dir = TempDir::new(label);
    let scheme_file = dir.path().join("input.scm");
    std::fs::write(&scheme_file, scheme).unwrap();
    let status = Command::new(IDR)
        .arg("init")
        .arg(dir.path())
        .arg(&scheme_file)
        .stdout(Stdio::null())
        .status()
        .expect("idr init");
    assert!(status.success(), "idr init failed");
    dir
}

/// Polls `DIR/listen.addr` until the spawned process publishes its
/// bound ephemeral port.
fn wait_listen_addr(dir: &std::path::Path) -> String {
    let path = dir.join("listen.addr");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(s) = std::fs::read_to_string(&path) {
            let s = s.trim();
            if !s.is_empty() {
                return s.to_string();
            }
        }
        assert!(Instant::now() < deadline, "no listen.addr within 10s");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The acceptance walkthrough as a test: two processes, one client op
/// each, anti-entropy over real loopback sockets until `.digest` and
/// `.state` agree byte for byte.
#[test]
fn two_processes_converge_over_loopback() {
    let dir_a = init_dir("wire-proc-a", UNIVERSITY);
    let dir_b = init_dir("wire-proc-b", UNIVERSITY);

    let mut a = Peer::spawn(
        dir_a.path(),
        &[
            "--listen", "127.0.0.1:0",
            "--origin", "0",
            "--origins", "2",
            "--sync-interval-ms", "25",
        ],
    );
    a.read_until("listening on ");
    let addr_a = wait_listen_addr(dir_a.path());

    let mut b = Peer::spawn(
        dir_b.path(),
        &[
            "--listen", "127.0.0.1:0",
            "--peer", &addr_a,
            "--origin", "1",
            "--origins", "2",
            "--sync-interval-ms", "25",
        ],
    );
    b.read_until("listening on ");

    a.send("insert R1: H=h1 R=r1 C=c1");
    a.read_until("journalled at origin 0");
    b.send("insert R4: C=c1 S=s1 G=g1");
    b.read_until("journalled at origin 1");
    // A key-violating insert: must converge to *rejected* on both.
    b.send("insert R1: H=h1 R=r1 C=c9");
    b.read_until("journalled at origin 1");

    let deadline = Instant::now() + Duration::from_secs(20);
    let (da, db) = loop {
        a.send(".digest");
        b.send(".digest");
        let da = a.read_until("digest ");
        let db = b.read_until("digest ");
        // Converged means identical digests that cover all three ops.
        if da == db && !da.contains("0/00000000") {
            break (da, db);
        }
        assert!(
            Instant::now() < deadline,
            "no convergence within 20s: a={da} b={db}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(da, db);

    a.send(".state");
    b.send(".state");
    let head_a = a.read_until("state: ");
    let head_b = b.read_until("state: ");
    assert_eq!(head_a, head_b);
    assert_eq!(head_a, "state: 2 tuple(s), consistent");
    let mut lines_a = Vec::new();
    let mut lines_b = Vec::new();
    for _ in 0..2 {
        lines_a.push(a.read_until("  "));
        lines_b.push(b.read_until("  "));
    }
    assert_eq!(lines_a, lines_b, "converged states must be byte-identical");
    assert!(
        lines_a.iter().any(|l| l.contains("C=c1")),
        "first R1 insert survives: {lines_a:?}"
    );
    assert!(
        !lines_a.iter().any(|l| l.contains("C=c9")),
        "key-violating insert rejected everywhere: {lines_a:?}"
    );

    a.quit_ok();
    b.quit_ok();
}

/// Handshake contract (docs/WIRE.md §3): a scheme-digest mismatch is a
/// typed rejection and the initiating process exits 7 — no op crosses.
#[test]
fn scheme_mismatch_is_rejected_with_exit_7() {
    const OTHER: &str = "
universe: A B C
scheme R1: A B  keys A
scheme R2: B C  keys B
";
    let dir_a = init_dir("wire-mismatch-a", UNIVERSITY);
    let dir_b = init_dir("wire-mismatch-b", OTHER);

    let mut a = Peer::spawn(
        dir_a.path(),
        &["--listen", "127.0.0.1:0", "--origin", "0", "--origins", "2"],
    );
    a.read_until("listening on ");
    let addr_a = wait_listen_addr(dir_a.path());

    // The mismatched initiator: its bootstrap exchange must die on the
    // handshake before stdin is even read.
    let child = Command::new(IDR)
        .arg("serve")
        .arg("--data-dir")
        .arg(dir_b.path())
        .args(["--peer", &addr_a, "--origin", "1", "--origins", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn mismatched peer");
    assert_eq!(
        child.status.code(),
        Some(7),
        "stderr: {}",
        String::from_utf8_lossy(&child.stderr)
    );
    let stderr = String::from_utf8_lossy(&child.stderr);
    assert!(
        stderr.contains("scheme digest mismatch"),
        "typed handshake detail expected, got: {stderr}"
    );

    // The responder survives a bad peer: it still answers commands.
    a.send(".digest");
    a.read_until("digest ");
    a.quit_ok();
}
