//! Lemma 4.2 made executable: for an independence-reducible scheme, the
//! chased state tableau `CHASE_F(T_r)` is identical — up to renaming of
//! nondistinguished variables and duplicate elimination — to the chased
//! tableau of the induced state `d` on `D` (one relation per block, each
//! block substate pre-chased by Algorithm 1).

use independence_reducible::chase::equivalence::equivalent_up_to_ndv_renaming;
use independence_reducible::chase::{chase, Tableau};
use independence_reducible::core::maintain::IrMaintainer;
use independence_reducible::core::recognition::recognize;
use independence_reducible::prelude::*;
use independence_reducible::workload::states::{generate, WorkloadConfig};
use independence_reducible::workload::{fixtures, generators};

fn check(db: &DatabaseScheme, seed: u64) {
    let kd = KeyDeps::of(db);
    let ir = recognize(db, &kd).accepted().expect("accepted fixture");
    let mut sym = SymbolTable::new();
    let w = generate(
        db,
        &mut sym,
        WorkloadConfig {
            entities: 6,
            fragment_pct: 55,
            inserts: 0,
            corrupt_pct: 0,
            seed,
        },
    );

    // Left side: chase the raw state tableau.
    let g = Guard::unlimited();
    let mut t_r = Tableau::of_state(db, &w.state);
    chase(&mut t_r, kd.full(), &g).expect("consistent");
    t_r.minimize_by_constants();

    // Right side: build T_d from the per-block representative instances
    // (Algorithm 1 per block = the construction of §4.1), then chase with
    // the same dependencies.
    let m = IrMaintainer::new(db, &ir, &w.state, &g).unwrap();
    let mut t_d = Tableau::new(db.universe().len());
    for rep in m.reps() {
        for tuple in rep.iter() {
            t_d.push_tuple(tuple, None);
        }
    }
    chase(&mut t_d, kd.full(), &g).expect("consistent");
    t_d.minimize_by_constants();

    assert!(
        equivalent_up_to_ndv_renaming(&t_r, &t_d),
        "Lemma 4.2 failed (seed {seed}): {} vs {} rows",
        t_r.len(),
        t_d.len()
    );
}

#[test]
fn lemma_4_2_on_example11() {
    let db = fixtures::example11().scheme;
    for seed in 0..5 {
        check(&db, seed);
    }
}

#[test]
fn lemma_4_2_on_block_chain() {
    let db = generators::block_chain_scheme(3, 3);
    for seed in 0..5 {
        check(&db, seed);
    }
}

#[test]
fn lemma_4_2_on_example1() {
    let db = fixtures::example1_r().scheme;
    for seed in 0..5 {
        check(&db, seed);
    }
}

#[test]
fn lemma_4_2_trivial_on_key_equivalent_schemes() {
    // One block: T_d is just the representative instance; the lemma
    // degenerates to Corollary 3.1(a).
    let db = fixtures::example4().scheme;
    for seed in 0..3 {
        check(&db, seed);
    }
}
