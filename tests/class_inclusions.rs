//! TH-INCL: the class-inclusion structure of §5.3, verified over the
//! synthetic families and hundreds of random schemes.
//!
//! * Theorem 5.3: independent ⇒ accepted by Algorithm 6.
//! * Theorem 5.2: γ-acyclic cover-embedding BCNF ⇒ accepted.
//! * Theorem 5.4 / 4.3: the class is closed under augmentation.
//! * Corollary 4.2: `R` accepted ⟺ `RED(R)` accepted.
//! * Proper inclusions: witnesses exist for every strict containment the
//!   paper claims.

use independence_reducible::core::augment::{augment, reduce};
use independence_reducible::core::baselines;
use independence_reducible::core::recognition::recognize;
use independence_reducible::core::split::is_split_free;
use independence_reducible::prelude::*;
use independence_reducible::relation::rng::SplitMix64;
use independence_reducible::workload::generators;

fn random_schemes(count: usize, seed: u64) -> Vec<DatabaseScheme> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    while out.len() < count {
        let width = rng.gen_range_inclusive(3, 6);
        let n = rng.gen_range_inclusive(2, 5);
        if let Some(db) = generators::random_scheme(&mut rng, width, n) {
            out.push(db);
        }
    }
    out
}

#[test]
fn theorem_5_3_independent_schemes_are_accepted() {
    let mut hits = 0;
    for db in random_schemes(300, 1) {
        let kd = KeyDeps::of(&db);
        if baselines::is_independent(&db, &kd) && baselines::is_bcnf(&db, &kd) {
            hits += 1;
            assert!(
                recognize(&db, &kd).is_accepted(),
                "independent BCNF scheme rejected: {db:?}"
            );
        }
    }
    assert!(hits > 10, "generator produced too few independent schemes ({hits})");
}

#[test]
fn theorem_5_2_gamma_acyclic_bcnf_schemes_are_accepted() {
    let mut hits = 0;
    for db in random_schemes(300, 2) {
        let kd = KeyDeps::of(&db);
        if baselines::is_gamma_acyclic_bcnf(&db, &kd) {
            hits += 1;
            assert!(
                recognize(&db, &kd).is_accepted(),
                "γ-acyclic BCNF scheme rejected: {db:?}"
            );
        }
    }
    assert!(hits > 10, "generator produced too few γ-acyclic BCNF schemes ({hits})");
}

#[test]
fn theorem_4_3_augmentation_closure() {
    // For every accepted random scheme, augmenting by any subset of any
    // relation scheme stays accepted.
    let mut rng = SplitMix64::new(3);
    let mut augmented = 0;
    for db in random_schemes(120, 3) {
        let kd = KeyDeps::of(&db);
        if !recognize(&db, &kd).is_accepted() {
            continue;
        }
        // One random nonempty subset of a random scheme.
        let i = rng.gen_range(0, db.len());
        let members: Vec<Attribute> = db.scheme(i).attrs().iter().collect();
        let size = rng.gen_range_inclusive(1, members.len());
        let subset = AttrSet::from_iter(members.into_iter().take(size));
        let aug = augment(&db, &kd, "AUGS", subset);
        let kd_aug = KeyDeps::of(&aug);
        assert!(
            recognize(&aug, &kd_aug).is_accepted(),
            "AUG broke acceptance: base {db:?} subset {subset:?}"
        );
        augmented += 1;
    }
    assert!(augmented > 30, "too few augmentations exercised ({augmented})");
}

#[test]
fn corollary_4_2_reduction_preserves_the_verdict() {
    let mut rng = SplitMix64::new(4);
    let mut compared = 0;
    for db in random_schemes(120, 4) {
        let kd = KeyDeps::of(&db);
        // Augment (possibly making it unreduced), then compare verdicts of
        // the augmented scheme and its reduction.
        let i = rng.gen_range(0, db.len());
        let members: Vec<Attribute> = db.scheme(i).attrs().iter().collect();
        let size = rng.gen_range_inclusive(1, members.len());
        let subset = AttrSet::from_iter(members.into_iter().take(size));
        let aug = augment(&db, &kd, "AUGS", subset);
        let red = reduce(&aug);
        let kd_aug = KeyDeps::of(&aug);
        let kd_red = KeyDeps::of(&red);
        // Corollary 4.2 presupposes one fixed F embedded in both R and
        // RED(R). When a dropped subsumed scheme carried a key dependency
        // not implied by the surviving ones, the reduced scheme embeds a
        // strictly weaker constraint set and the comparison is between
        // different instances — skip those (they also violate BCNF of the
        // containing scheme).
        if !kd_aug.full().equivalent(kd_red.full()) {
            continue;
        }
        compared += 1;
        assert_eq!(
            recognize(&aug, &kd_aug).is_accepted(),
            recognize(&red, &kd_red).is_accepted(),
            "RED changed the verdict for {aug:?}"
        );
    }
    assert!(compared > 30, "too few reductions compared ({compared})");
}

/// The strict-containment witnesses of the paper:
/// independent ⊊ independence-reducible ⊋ γ-acyclic BCNF, and
/// ctm ⊊ algebraic-maintainable within the class.
#[test]
fn proper_inclusion_witnesses() {
    // Example 3: accepted, neither independent nor γ-acyclic.
    let c = classify(&independence_reducible::workload::fixtures::example3().scheme);
    assert!(c.independence_reducible.is_some() && !c.independent && !c.gamma_acyclic);

    // Example 9 (chain): independent AND γ-acyclic — baseline member,
    // accepted.
    let c = classify(&independence_reducible::workload::fixtures::example9().scheme);
    assert!(c.independent && c.gamma_acyclic && c.independence_reducible.is_some());

    // Example 4: accepted and algebraic-maintainable but NOT ctm.
    let c = classify(&independence_reducible::workload::fixtures::example4().scheme);
    assert_eq!(c.ctm, Some(false));
    assert_eq!(c.algebraic_maintainable, Some(true));

    // Example 2: rejected — outside even algebraic-maintainability.
    let c = classify(&generators::example2_scheme());
    assert!(c.independence_reducible.is_none());
}

/// Scaling sanity for the generators the benchmarks rely on: family
/// classifications hold at every size.
#[test]
fn generator_families_classify_as_designed() {
    for n in [3usize, 6, 10] {
        let db = generators::chain_scheme(n);
        let kd = KeyDeps::of(&db);
        let all: Vec<usize> = (0..db.len()).collect();
        assert!(recognize(&db, &kd).is_accepted());
        assert!(is_split_free(&db, &kd, &all), "chain({n})");
    }
    for n in [3usize, 5, 8] {
        let db = generators::cycle_scheme(n);
        let kd = KeyDeps::of(&db);
        let all: Vec<usize> = (0..db.len()).collect();
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert_eq!(ir.len(), 1, "cycle({n}) is one key-equivalent block");
        assert!(is_split_free(&db, &kd, &all), "cycle({n})");
        assert!(!baselines::is_independent(&db, &kd), "cycle({n})");
    }
    for m in [2usize, 3, 5] {
        let db = generators::split_scheme(m);
        let kd = KeyDeps::of(&db);
        let all: Vec<usize> = (0..db.len()).collect();
        assert!(recognize(&db, &kd).is_accepted(), "split({m})");
        assert!(!is_split_free(&db, &kd, &all), "split({m}) must split");
    }
    for b in [1usize, 2, 4] {
        let db = generators::block_chain_scheme(b, 3);
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert_eq!(ir.len(), b, "block_chain({b}, 3) has {b} blocks");
    }
    for k in [1usize, 3, 6] {
        let db = generators::star_scheme(k);
        let kd = KeyDeps::of(&db);
        assert!(baselines::is_independent(&db, &kd), "star({k})");
        assert!(recognize(&db, &kd).is_accepted());
    }
}
