//! Replays every fixture under `tests/corpus/` through the differential
//! oracle's four-way lockstep interpreter.
//!
//! Each fixture is a shrunken reproduction of a bug that once lived in
//! the engine (see the comment at the top of each file); replaying them
//! here pins the fixes forever. Reverting a fix makes exactly its
//! fixture fail again with the divergence kind named in the file.

use independence_reducible::oracle::{run_case_guarded, Case};

#[test]
fn every_corpus_fixture_replays_cleanly() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 3,
        "expected at least the three bugfix fixtures, found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let case = Case::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match run_case_guarded(&case) {
            Ok(report) => assert!(
                report.ops_run == case.ops.len(),
                "{}: ran {} of {} ops",
                path.display(),
                report.ops_run,
                case.ops.len()
            ),
            Err(d) => panic!("{}: oracles diverge: {d}", path.display()),
        }
    }
}
