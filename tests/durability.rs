//! Durability suite for the `idr-store` layer (DESIGN.md §12): the
//! write-ahead log, snapshot rotation and crash recovery must together
//! guarantee that a recovered process is observationally equal to the
//! one that died — same state, same re-earned consistency verdict, same
//! query answers.
//!
//! * Round trip: a durable session's ops survive a drop/recover cycle,
//!   including automatic snapshot rotation mid-stream.
//! * Torn tail: a crash mid-append leaves an incomplete final record;
//!   recovery truncates it, and a second recovery sees a clean log.
//! * Corruption: a *complete* record with a bad checksum is a typed
//!   [`StoreError::Corrupt`], never silently repaired.
//! * Abort markers: guard-tripped inserts and deletes roll memory back
//!   and append an `abort` marker; recovery drops the cancelled op
//!   (these are the targeted tests the crash fuzzer's docs defer to —
//!   the fuzzer itself never trips guards mid-op).
//! * Re-earned verdicts: a logged-but-rejected insert re-rejects on
//!   replay; the verdict comes from re-execution, not from the log.
//! * A bounded run of the crash-point fuzzer (`idr-oracle`), which cuts
//!   the WAL at every byte boundary and diffs recovery against a
//!   never-crashed oracle.

// These tests drive the legacy single-writer `Durability` hook through
// the deprecated `Session` shim on purpose: the shim must keep working
// until it is removed, and this file is its durability coverage. The
// concurrent `SharedStore`/`DurabilitySink` path is covered by
// tests/concurrency_stress.rs and the oracle's concurrent arms.
#![allow(deprecated)]

use std::time::Duration;

use independence_reducible::exec::{Budget, Guard};
use independence_reducible::oracle::crash_fuzz;
use independence_reducible::prelude::*;
use independence_reducible::relation::parse::{
    parse_scheme, parse_tuple_line, render_tuple_line,
};
use independence_reducible::store::{recover, Store, StoreError, TempDir};

/// The doc-example scheme: two independent single-key relations, enough
/// to exercise accepts, rejects and deletes without chase surprises.
fn scheme() -> DatabaseScheme {
    parse_scheme(
        "universe: A B C D\n\
         scheme R1: A B keys A\n\
         scheme R2: C D keys C\n",
    )
    .unwrap()
}

/// The state rendered as sorted fixture lines — the cross-symbol-table
/// comparison form (recovery interns into a fresh table, so raw values
/// are not comparable across the crash).
fn state_lines(db: &DatabaseScheme, state: &DatabaseState, symbols: &SymbolTable) -> Vec<String> {
    let mut lines: Vec<String> = state
        .iter_all()
        .map(|(i, t)| render_tuple_line(db, symbols, i, t))
        .collect();
    lines.sort();
    lines
}

/// Runs `ops` (fixture lines, `+` insert / `-` delete) through a durable
/// session on `store` starting from the empty state, returning each
/// op's outcome.
fn run_ops(store: &mut Store, ops: &[(char, &str)]) -> Vec<bool> {
    let empty = DatabaseState::empty(store.scheme());
    run_ops_on_state(store, &empty, ops)
}

#[test]
fn snapshot_rotation_and_replay_round_trip() {
    let dir = TempDir::new("roundtrip");
    let db = scheme();
    let mut store = Store::init(dir.path(), &db)
        .unwrap()
        .with_snapshot_every(Some(2));
    let ops: &[(char, &str)] = &[
        ('+', "R1: A=a1 B=b1"),
        ('+', "R2: C=c1 D=d1"), // op 2 → snapshot, rotate to epoch 1
        ('+', "R1: A=a2 B=b2"),
        ('-', "R2: C=c1 D=d1"),
    ];
    let outcomes = run_ops(&mut store, ops);
    assert_eq!(outcomes, vec![true, true, true, true]);
    // The rotation happened mid-stream: two snapshots were cut (after
    // op 2 and op 4), so the live WAL is empty again.
    assert_eq!(store.epoch(), 2);
    assert_eq!(store.wal_records(), 0);
    drop(store); // simulate process death

    let rec = recover(dir.path()).unwrap();
    assert!(rec.consistent);
    assert_eq!(rec.stats.epoch, 2);
    assert_eq!(rec.stats.snapshot_tuples, 2);
    assert_eq!(rec.stats.wal_records, 0);
    assert_eq!(rec.stats.replayed, 0);
    let symbols = rec.store.symbols();
    let lines = state_lines(rec.store.scheme(), &rec.state, &symbols.lock().unwrap());
    assert_eq!(lines, vec!["R1: A=a1 B=b1", "R1: A=a2 B=b2"]);

    // The recovered store appends where the old one left off: one more
    // durable op, one more recovery.
    let mut store = rec.store;
    run_ops_on_state(&mut store, &rec.state, &[('+', "R2: C=c9 D=d9")]);
    drop(store);
    let rec = recover(dir.path()).unwrap();
    assert!(rec.consistent);
    assert_eq!(rec.stats.replayed, 1);
    assert_eq!(rec.state.total_tuples(), 3);
}

/// Like [`run_ops`] but resuming from an existing (recovered) state.
fn run_ops_on_state(store: &mut Store, base: &DatabaseState, ops: &[(char, &str)]) -> Vec<bool> {
    let db = store.scheme().clone();
    let symbols = store.symbols();
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let mut session = engine
        .session(base, &guard)
        .unwrap()
        .with_durability(store);
    let mut outcomes = Vec::new();
    for &(kind, line) in ops {
        let (rel, t) = {
            let mut sym = symbols.lock().unwrap();
            parse_tuple_line(line, &db, &mut sym).unwrap()
        };
        let ok = match kind {
            '+' => session.insert(rel, t, &guard).unwrap(),
            '-' => session.delete(rel, &t, &guard).unwrap(),
            _ => unreachable!("op kind is '+' or '-'"),
        };
        outcomes.push(ok);
    }
    outcomes
}

#[test]
fn torn_final_record_is_truncated_and_tolerated() {
    let dir = TempDir::new("torn");
    let db = scheme();
    let mut store = Store::init(dir.path(), &db).unwrap();
    run_ops(
        &mut store,
        &[('+', "R1: A=a1 B=b1"), ('+', "R2: C=c1 D=d1")],
    );
    drop(store);

    // Crash mid-append: a partial header at the tail of the live WAL.
    let wal = dir.path().join("wal-0.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x2a, 0x00, 0x00]); // 3 of 8 header bytes
    std::fs::write(&wal, &bytes).unwrap();

    let rec = recover(dir.path()).unwrap();
    assert_eq!(rec.stats.torn_bytes, 3);
    assert_eq!(rec.stats.wal_records, 2);
    assert_eq!(rec.stats.replayed, 2);
    assert!(rec.consistent);
    assert_eq!(rec.state.total_tuples(), 2);
    drop(rec);

    // The first recovery truncated the tail on disk: a second recovery
    // sees a clean log and the same state.
    let rec = recover(dir.path()).unwrap();
    assert_eq!(rec.stats.torn_bytes, 0);
    assert_eq!(rec.stats.replayed, 2);
    assert_eq!(rec.state.total_tuples(), 2);
}

#[test]
fn complete_record_with_bad_checksum_is_a_typed_corruption_error() {
    let dir = TempDir::new("corrupt");
    let db = scheme();
    let mut store = Store::init(dir.path(), &db).unwrap();
    run_ops(&mut store, &[('+', "R1: A=a1 B=b1")]);
    drop(store);

    // Flip the last payload byte: the record is structurally complete,
    // so this is storage corruption, not a crash-torn tail.
    let wal = dir.path().join("wal-0.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&wal, &bytes).unwrap();

    match recover(dir.path()) {
        Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
        other => panic!("expected StoreError::Corrupt, got {other:?}"),
    }
}

#[test]
fn guard_tripped_insert_logs_an_abort_marker_that_recovery_skips() {
    let dir = TempDir::new("abort-insert");
    let db = scheme();
    let mut store = Store::init(dir.path(), &db).unwrap();
    {
        let symbols = store.symbols();
        let engine = Engine::new(db.clone());
        let guard = Guard::unlimited();
        let mut session = engine
            .session(&DatabaseState::empty(&db), &guard)
            .unwrap()
            .with_durability(&mut store);
        let (rel, t) = {
            let mut sym = symbols.lock().unwrap();
            parse_tuple_line("R1: A=a1 B=b1", &db, &mut sym).unwrap()
        };
        assert!(session.insert(rel, t, &guard).unwrap());
        // An already-expired deadline trips the chase after the WAL
        // record is committed; the engine rolls memory back and appends
        // the abort marker.
        let tripped = Guard::new(Budget::unlimited().with_timeout(Duration::ZERO));
        let (rel, t) = {
            let mut sym = symbols.lock().unwrap();
            parse_tuple_line("R1: A=a2 B=b2", &db, &mut sym).unwrap()
        };
        assert!(session.insert(rel, t, &tripped).is_err());
        // The session stays usable after the rollback.
        assert!(session.is_consistent());
    }
    // Log: insert, insert, abort.
    assert_eq!(store.wal_records(), 3);
    drop(store);

    let rec = recover(dir.path()).unwrap();
    assert_eq!(rec.stats.wal_records, 3);
    assert_eq!(rec.stats.aborted, 1);
    assert_eq!(rec.stats.replayed, 1);
    assert!(rec.consistent);
    let symbols = rec.store.symbols();
    let lines = state_lines(rec.store.scheme(), &rec.state, &symbols.lock().unwrap());
    assert_eq!(lines, vec!["R1: A=a1 B=b1"]);
}

#[test]
fn guard_tripped_delete_logs_an_abort_marker_that_recovery_skips() {
    let dir = TempDir::new("abort-delete");
    let db = scheme();
    let mut store = Store::init(dir.path(), &db).unwrap();
    {
        let symbols = store.symbols();
        let engine = Engine::new(db.clone());
        let guard = Guard::unlimited();
        let mut session = engine
            .session(&DatabaseState::empty(&db), &guard)
            .unwrap()
            .with_durability(&mut store);
        let (rel, t) = {
            let mut sym = symbols.lock().unwrap();
            parse_tuple_line("R1: A=a1 B=b1", &db, &mut sym).unwrap()
        };
        assert!(session.insert(rel, t.clone(), &guard).unwrap());
        let (rel2, t2) = {
            let mut sym = symbols.lock().unwrap();
            parse_tuple_line("R1: A=a2 B=b2", &db, &mut sym).unwrap()
        };
        assert!(session.insert(rel2, t2, &guard).unwrap());
        // Delete rebuilds the touched block under the caller's guard; an
        // expired deadline aborts the rebuild (the surviving tuple keeps
        // it non-trivial) after the record is logged, and the deleted
        // tuple is restored — delete is all-or-nothing.
        let tripped = Guard::new(Budget::unlimited().with_timeout(Duration::ZERO));
        assert!(session.delete(rel, &t, &tripped).is_err());
        assert!(session.is_consistent());
    }
    // Log: insert, insert, delete, abort.
    assert_eq!(store.wal_records(), 4);
    drop(store);

    let rec = recover(dir.path()).unwrap();
    assert_eq!(rec.stats.aborted, 1);
    assert_eq!(rec.stats.replayed, 2);
    assert!(rec.consistent);
    assert_eq!(rec.state.total_tuples(), 2);
}

#[test]
fn rejected_insert_is_replayed_and_rejected_again() {
    let dir = TempDir::new("reject");
    let db = scheme();
    let mut store = Store::init(dir.path(), &db).unwrap();
    let outcomes = run_ops(
        &mut store,
        &[
            ('+', "R1: A=a1 B=b1"),
            ('+', "R1: A=a1 B=b2"), // key A violation — rejected
            ('+', "R2: C=c1 D=d1"),
        ],
    );
    assert_eq!(outcomes, vec![true, false, true]);
    // Rejected ops stay in the log (no abort marker — the engine state
    // was never speculatively changed); replay re-derives the verdict.
    assert_eq!(store.wal_records(), 3);
    drop(store);

    let rec = recover(dir.path()).unwrap();
    assert_eq!(rec.stats.replayed, 3);
    assert_eq!(rec.stats.rejected, 1);
    assert!(rec.consistent);
    let symbols = rec.store.symbols();
    let lines = state_lines(rec.store.scheme(), &rec.state, &symbols.lock().unwrap());
    assert_eq!(lines, vec!["R1: A=a1 B=b1", "R2: C=c1 D=d1"]);
}

#[test]
fn crash_point_fuzzer_smoke() {
    // CI runs the full 200-case sweep via the CLI (`idr fuzz --crash`);
    // this is the in-tree smoke version of the same oracle.
    let summary = crash_fuzz(0xD00D, 4, None);
    assert!(summary.crash_points > 0);
    assert!(
        summary.is_clean(),
        "crash-recovery divergence: {:?}",
        summary.failures
    );
}
