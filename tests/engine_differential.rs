//! Differential suite for the PR 2 engine: the indexed incremental
//! [`Engine`]/[`Hub`] facade must be observationally equal to the
//! naive whole-state chase on every fixture the paper provides and on the
//! synthetic scaling families — same consistency verdict, same total
//! projections (the query-visible part of the representative instance),
//! same accept/reject decision for every insert.
//!
//! The suite also pins the Theorem 4.2 claim the engine exploits: block
//! evaluation may run in parallel, and parallel and serial execution
//! agree tuple-for-tuple even on corrupted states and under injected
//! budget faults (the guard is shared across worker threads, so a trip in
//! one block must surface identically in both modes).

use std::mem::discriminant;

use independence_reducible::exec::{Budget, ExecError};
use independence_reducible::prelude::*;
use independence_reducible::workload::generators;
use independence_reducible::workload::states::{generate, WorkloadConfig};

/// Every query the engine can answer, compared against the chase oracle.
fn check_queries(db: &DatabaseScheme, state: &DatabaseState, engine: &Engine, case: &str) {
    let kd = KeyDeps::of(db);
    let g = Guard::unlimited();
    let oracle_consistent = is_consistent(db, state, kd.full(), &g).unwrap();
    let hub = engine.hub(state, &g).unwrap();
    assert_eq!(hub.is_consistent(), oracle_consistent, "{case}: verdict");
    let view = hub.read_view();
    let mut targets: Vec<AttrSet> = db.schemes().iter().map(|s| s.attrs()).collect();
    targets.push(db.universe().all());
    for x in targets {
        let oracle = total_projection(db, state, kd.full(), x, &g).unwrap();
        let ours = engine.total_projection(state, x, &g).unwrap();
        assert_eq!(
            ours,
            oracle,
            "{case}: [{}]",
            db.universe().render(x)
        );
        // The hub's read view serves the same answer from its snapshot.
        let via_view = view.total_projection(x, &g).unwrap();
        assert_eq!(via_view, oracle, "{case}: view [{}]", db.universe().render(x));
    }
}

#[test]
fn engine_matches_the_chase_on_all_paper_fixtures() {
    for fx in independence_reducible::workload::paper_examples() {
        let engine = Engine::new(fx.scheme.clone());
        for (seed, corrupt_pct) in [(11u64, 0u32), (12, 0), (13, 35), (14, 70)] {
            let mut sym = SymbolTable::new();
            let w = generate(
                &fx.scheme,
                &mut sym,
                WorkloadConfig {
                    entities: 6,
                    fragment_pct: 55,
                    inserts: 0,
                    corrupt_pct,
                    seed,
                },
            );
            let case = format!("{} (seed {seed}, corrupt {corrupt_pct}%)", fx.name);
            check_queries(&fx.scheme, &w.state, &engine, &case);
        }
    }
}

#[test]
fn engine_matches_the_chase_on_synthetic_families() {
    let families: Vec<(&str, DatabaseScheme)> = vec![
        ("chain(6)", generators::chain_scheme(6)),
        ("cycle(5)", generators::cycle_scheme(5)),
        ("split(4)", generators::split_scheme(4)),
        ("star(4)", generators::star_scheme(4)),
        ("block_chain(3,3)", generators::block_chain_scheme(3, 3)),
        ("example2", generators::example2_scheme()),
    ];
    for (name, db) in families {
        let engine = Engine::new(db.clone());
        for (seed, corrupt_pct) in [(21u64, 0u32), (22, 40)] {
            let mut sym = SymbolTable::new();
            let w = generate(
                &db,
                &mut sym,
                WorkloadConfig {
                    entities: 7,
                    fragment_pct: 60,
                    inserts: 0,
                    corrupt_pct,
                    seed,
                },
            );
            let case = format!("{name} (seed {seed}, corrupt {corrupt_pct}%)");
            check_queries(&db, &w.state, &engine, &case);
        }
    }
}

/// Insert differential: the write handle's incremental accept/reject
/// decision equals "add the tuple, re-chase from scratch, keep it iff
/// consistent".
#[test]
fn incremental_inserts_match_recompute_from_scratch() {
    let families: Vec<(&str, DatabaseScheme)> = vec![
        ("block_chain(3,3)", generators::block_chain_scheme(3, 3)),
        ("chain(5)", generators::chain_scheme(5)),
        ("example2", generators::example2_scheme()),
    ];
    for (name, db) in families {
        let kd = KeyDeps::of(&db);
        let engine = Engine::new(db.clone());
        for seed in [31u64, 32, 33] {
            let mut sym = SymbolTable::new();
            let w = generate(
                &db,
                &mut sym,
                WorkloadConfig {
                    entities: 6,
                    fragment_pct: 50,
                    inserts: 8,
                    corrupt_pct: 0,
                    seed,
                },
            );
            let g = Guard::unlimited();
            let hub = engine.hub(&w.state, &g).unwrap();
            let writer = hub.write_handle();
            let mut naive = w.state.clone();
            for (i, t) in &w.inserts {
                let accepted = writer.insert(*i, t.clone(), &g).unwrap();
                // Oracle: apply to a copy and re-chase the whole state.
                let mut candidate = naive.clone();
                candidate.insert(*i, t.clone()).unwrap();
                let want = is_consistent(&db, &candidate, kd.full(), &g).unwrap();
                assert_eq!(accepted, want, "{name} seed {seed}: insert {t:?} into {i}");
                if want {
                    naive = candidate;
                }
            }
            // After the whole stream the hub's published state equals the
            // naive replay, and so do its answers.
            let view = hub.read_view();
            assert_eq!(view.state().total_tuples(), naive.total_tuples());
            let x = db.universe().all();
            assert_eq!(
                view.total_projection(x, &g).unwrap(),
                total_projection(&db, &naive, kd.full(), x, &g).unwrap(),
                "{name} seed {seed}"
            );
        }
    }
}

/// Theorem 4.2 under stress: on a multi-block fixture, parallel and
/// serial block evaluation agree — on clean states, on corrupted states,
/// and when a shared budget guard trips mid-evaluation.
#[test]
fn parallel_and_serial_agree_under_injected_faults() {
    let db = generators::block_chain_scheme(4, 3);
    let parallel = Engine::new(db.clone()); // parallel is the default
    let serial = Engine::new(db.clone()).with_parallel(false);
    assert!(parallel.is_independence_reducible());
    for (seed, corrupt_pct) in [(41u64, 0u32), (42, 50), (43, 80)] {
        let mut sym = SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 8,
                fragment_pct: 55,
                inserts: 0,
                corrupt_pct,
                seed,
            },
        );
        let g = Guard::unlimited();
        let sp = parallel.hub(&w.state, &g).unwrap();
        let ss = serial.hub(&w.state, &g).unwrap();
        assert_eq!(sp.is_consistent(), ss.is_consistent(), "seed {seed}");
        assert_eq!(
            sp.inconsistent_blocks(),
            ss.inconsistent_blocks(),
            "seed {seed}: same blocks poisoned"
        );
        let x = db.universe().all();
        assert_eq!(
            sp.read_view().total_projection(x, &g).unwrap(),
            ss.read_view().total_projection(x, &g).unwrap(),
            "seed {seed}"
        );

        // Injected faults: progressively tighter chase budgets. Both modes
        // must classify each budget identically — either both finish (and
        // agree) or both trip with the same error variant.
        for steps in [0u64, 1, 2, 4, 64, 4096] {
            let budget = Budget::unlimited().with_max_chase_steps(steps);
            let rp = parallel.hub(&w.state, &Guard::new(budget));
            let rs = serial.hub(&w.state, &Guard::new(budget));
            match (rp, rs) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.is_consistent(), b.is_consistent(), "seed {seed}/{steps}");
                    assert_eq!(
                        a.inconsistent_blocks(),
                        b.inconsistent_blocks(),
                        "seed {seed}/{steps}"
                    );
                }
                (Err(a), Err(b)) => {
                    assert!(
                        matches!(a, ExecError::BudgetExceeded { .. }),
                        "seed {seed}/{steps}: {a}"
                    );
                    assert_eq!(discriminant(&a), discriminant(&b), "seed {seed}/{steps}");
                }
                (a, b) => panic!(
                    "seed {seed}/{steps}: parallel {:?} vs serial {:?} disagree on success",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}
