//! Concurrency stress suite for the serving layer (DESIGN.md §14): many
//! writer threads and many reader threads over one [`Hub`] backed by the
//! group-commit [`SharedStore`].
//!
//! The load-bearing claim is Theorem 4.2 read as a concurrency theorem:
//! per-block WAL order equals per-block apply order (the writer holds
//! the block's lock across *log → chase → apply*), and ops on different
//! blocks commute — so **a serial replay of the committed WAL order must
//! reproduce the concurrent final state byte for byte**, no matter how
//! the scheduler interleaved the clients. The tests here check exactly
//! that, plus the reader-side guarantees (snapshot isolation, monotone
//! epochs) and crash recovery from a WAL cut mid-group-commit-batch at
//! every byte boundary.
//!
//! The unbounded, seed-randomised version of these checks is the
//! oracle's seventh arm (`idr fuzz --concurrent` and
//! `idr fuzz --crash --concurrent`); this file is the deterministic
//! always-on tier-1 slice of it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use independence_reducible::prelude::{
    DatabaseScheme, DatabaseState, Engine, Guard, SymbolTable, Tuple,
};
use independence_reducible::relation::parse::render_tuple_line;
use independence_reducible::store::{recover, snapshot, wal, SharedStore, Store, TempDir};
use independence_reducible::workload::generators::block_chain_scheme;

/// Relations per block in [`block_chain_scheme`] as used here.
const RELS_PER_BLOCK: usize = 3;

/// Pre-interned insert streams, one per block: `per_block` tuples with
/// fresh values each (so every insert is accepted and chases), cycling
/// through the block's relations. Block `b` of `block_chain_scheme(n,
/// RELS_PER_BLOCK)` owns relations `b*RELS_PER_BLOCK ..`.
fn block_streams(
    db: &DatabaseScheme,
    sym: &mut SymbolTable,
    blocks: usize,
    per_block: usize,
) -> Vec<Vec<(usize, Tuple)>> {
    (0..blocks)
        .map(|b| {
            (0..per_block)
                .map(|k| {
                    let i = b * RELS_PER_BLOCK + k % RELS_PER_BLOCK;
                    let t = Tuple::from_pairs(db.scheme(i).attrs().iter().map(|a| {
                        (a, sym.intern(&format!("{}_b{b}k{k}", db.universe().name(a))))
                    }));
                    (i, t)
                })
                .collect()
        })
        .collect()
}

/// Canonical rendering of a state: every tuple of every relation as its
/// fixture line, sorted. Two states rendered through *different* symbol
/// tables compare correctly — the lines are plain strings.
fn rendered_state(db: &DatabaseScheme, sym: &SymbolTable, state: &DatabaseState) -> Vec<String> {
    let mut lines: Vec<String> = (0..db.len())
        .flat_map(|i| {
            state
                .relation(i)
                .iter()
                .map(move |t| render_tuple_line(db, sym, i, t))
        })
        .collect();
    lines.sort();
    lines
}

/// Serial oracle: replays `lines` (committed WAL order) one by one
/// through a fresh single hub and returns the rendered final state plus
/// the consistency verdict.
fn serial_replay(db: &DatabaseScheme, lines: &[String]) -> (Vec<String>, bool) {
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let mut sym = SymbolTable::new();
    let hub = engine
        .hub(&DatabaseState::empty(db), &guard)
        .expect("empty state is consistent");
    let writer = hub.write_handle();
    for line in lines {
        writer
            .replay_op(line, &mut sym, &guard)
            .expect("committed op replays");
    }
    let view = hub.read_view();
    (rendered_state(db, &sym, view.state()), view.is_consistent())
}

/// N writers + M readers over one durable hub. Writers split the blocks;
/// readers continuously open read views, asserting snapshot isolation
/// invariants while the writes race. Afterwards the committed WAL order
/// replayed serially must reproduce the concurrent state byte for byte.
#[test]
fn concurrent_final_state_equals_serial_replay_of_the_wal() {
    const BLOCKS: usize = 6;
    const WRITERS: usize = 6;
    const READERS: usize = 3;
    const PER_BLOCK: usize = 12;

    let db = block_chain_scheme(BLOCKS, RELS_PER_BLOCK);
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();

    let dir = TempDir::new("stress-serial-replay");
    let store = Store::init(dir.path(), &db)
        .expect("store init")
        .with_sync(false);
    let shared = Arc::new(
        SharedStore::new(store).with_group_window(Duration::from_micros(300)),
    );
    let symbols = shared.symbols();
    let streams = block_streams(
        &db,
        &mut symbols.lock().expect("fresh symbol table"),
        BLOCKS,
        PER_BLOCK,
    );

    let hub = engine
        .hub_with(&DatabaseState::empty(&db), &guard, shared.clone())
        .expect("empty state is consistent");
    let writer = hub.write_handle();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for c in 0..WRITERS {
            let writer = writer.clone();
            let streams = &streams;
            let guard = &guard;
            s.spawn(move || {
                for b in (c..streams.len()).step_by(WRITERS) {
                    for (i, t) in &streams[b] {
                        assert!(
                            writer.insert(*i, t.clone(), guard).expect("within budget"),
                            "fresh-valued insert must be accepted"
                        );
                    }
                }
            });
        }
        for _ in 0..READERS {
            let hub = &hub;
            let done = &done;
            let db = &db;
            let guard = &guard;
            s.spawn(move || {
                let mut last_epoch = 0u64;
                let mut last_tuples = 0usize;
                while !done.load(Ordering::Acquire) {
                    let view = hub.read_view();
                    // Writers only add fresh-valued tuples: every
                    // published epoch is consistent, epochs and tuple
                    // counts never go backwards for one reader.
                    assert!(view.is_consistent(), "epoch {} inconsistent", view.epoch());
                    assert!(view.epoch() >= last_epoch, "epoch went backwards");
                    let tuples = view.state().total_tuples();
                    assert!(tuples >= last_tuples, "published state lost tuples");
                    let x = db.scheme(0).attrs();
                    let answer = view
                        .total_projection(x, guard)
                        .expect("within budget")
                        .expect("consistent epoch answers");
                    assert!(answer.len() <= tuples);
                    last_epoch = view.epoch();
                    last_tuples = tuples;
                    std::thread::yield_now();
                }
            });
        }
        // The writer scope ends only when all writers finish; flag the
        // readers down from a watcher thread joined by the same scope.
        let writer_probe = writer.clone();
        let done = &done;
        let streams = &streams;
        s.spawn(move || {
            let total: usize = streams.iter().map(Vec::len).sum();
            loop {
                let tuples = writer_probe.read_view().state().total_tuples();
                if tuples == total {
                    break;
                }
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    let total_ops: usize = streams.iter().map(Vec::len).sum();
    let final_epoch = shared.lock().epoch();
    assert_eq!(shared.lock().wal_records(), total_ops as u64);
    let grouped_batches = shared.group_wal().batches();
    let live_lines = rendered_state(
        &db,
        &symbols.lock().expect("store symbol table"),
        hub.read_view().state(),
    );
    drop(hub);
    drop(shared);

    // The committed order is what the WAL persisted.
    let wal_path = snapshot::wal_path(dir.path(), final_epoch);
    let scan = wal::scan_file(&wal_path).expect("clean shutdown leaves a clean WAL");
    assert_eq!(scan.torn_bytes, 0);
    assert_eq!(scan.records.len(), total_ops);
    assert!(
        grouped_batches <= scan.records.len() as u64,
        "batches can never exceed appends"
    );

    // Theorem 4.2 as a concurrency invariant: serial replay of the
    // committed order reproduces the racy final state byte for byte —
    // and recovery from the same WAL agrees with both.
    let (serial_lines, serial_consistent) = serial_replay(&db, &scan.records);
    assert!(serial_consistent);
    assert_eq!(
        serial_lines, live_lines,
        "serial replay of the committed WAL order must equal the concurrent final state"
    );
    let recovered = recover(dir.path()).expect("recovery succeeds");
    let recovered_lines = rendered_state(
        &db,
        &recovered.store.symbols().lock().expect("recovered table"),
        &recovered.state,
    );
    assert!(recovered.consistent);
    assert_eq!(
        serial_lines, recovered_lines,
        "recovery must replay to the same state"
    );
    assert_eq!(serial_lines.len(), total_ops);
}

/// Cuts the WAL of a finished concurrent group-commit run at **every**
/// byte boundary — including mid-record and mid-batch — and checks that
/// each cut recovers to exactly the state of some prefix of the
/// committed op order (the surviving complete records).
#[test]
fn crash_cut_mid_group_commit_batch_recovers_to_a_committed_prefix() {
    const BLOCKS: usize = 4;
    const WRITERS: usize = 4;
    const PER_BLOCK: usize = 6;

    let db = block_chain_scheme(BLOCKS, RELS_PER_BLOCK);
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();

    let live = TempDir::new("stress-crash-live");
    let store = Store::init(live.path(), &db)
        .expect("store init")
        .with_sync(false);
    let shared = Arc::new(
        SharedStore::new(store).with_group_window(Duration::from_micros(400)),
    );
    let symbols = shared.symbols();
    let streams = block_streams(
        &db,
        &mut symbols.lock().expect("fresh symbol table"),
        BLOCKS,
        PER_BLOCK,
    );
    {
        let hub = engine
            .hub_with(&DatabaseState::empty(&db), &guard, shared.clone())
            .expect("empty state is consistent");
        let writer = hub.write_handle();
        std::thread::scope(|s| {
            for c in 0..WRITERS {
                let writer = writer.clone();
                let streams = &streams;
                let guard = &guard;
                s.spawn(move || {
                    for (i, t) in &streams[c] {
                        assert!(writer.insert(*i, t.clone(), guard).expect("within budget"));
                    }
                });
            }
        });
    }
    let final_epoch = shared.lock().epoch();
    drop(shared);

    let wal_path = snapshot::wal_path(live.path(), final_epoch);
    let wal_bytes = std::fs::read(&wal_path).expect("WAL readable");
    let committed = wal::scan_file(&wal_path).expect("clean WAL").records;
    assert_eq!(committed.len(), BLOCKS * PER_BLOCK);

    // Serial-replay oracle per prefix, built incrementally once.
    let oracle_engine = Engine::new(db.clone());
    let oracle_hub = oracle_engine
        .hub(&DatabaseState::empty(&db), &guard)
        .expect("empty state is consistent");
    let mut oracle_sym = SymbolTable::new();
    let mut prefix_lines: Vec<Vec<String>> = Vec::with_capacity(committed.len() + 1);
    prefix_lines.push(rendered_state(
        &db,
        &oracle_sym,
        oracle_hub.read_view().state(),
    ));
    for line in &committed {
        oracle_hub
            .write_handle()
            .replay_op(line, &mut oracle_sym, &guard)
            .expect("committed op replays");
        prefix_lines.push(rendered_state(
            &db,
            &oracle_sym,
            oracle_hub.read_view().state(),
        ));
    }

    let scratch = TempDir::new("stress-crash-scratch");
    for f in std::fs::read_dir(live.path()).expect("live dir readable") {
        let f = f.expect("dir entry");
        std::fs::copy(f.path(), scratch.path().join(f.file_name())).expect("stage copy");
    }
    let scratch_wal = snapshot::wal_path(scratch.path(), final_epoch);

    // Every byte is a crash point: a cut inside a framed record loses
    // that record (torn tail), a cut between records of one group batch
    // keeps the earlier riders — either way the survivors are a prefix.
    let mut cuts = 0usize;
    for cut in 0..=wal_bytes.len() {
        std::fs::write(&scratch_wal, &wal_bytes[..cut]).expect("write truncated WAL");
        let survivors = wal::scan_bytes(&wal_bytes[..cut], &scratch_wal)
            .expect("prefix of a clean WAL scans")
            .records
            .len();
        let recovered = recover(scratch.path()).expect("every cut recovers");
        assert_eq!(
            recovered.stats.replayed, survivors,
            "cut {cut}: recovery must replay exactly the surviving records"
        );
        assert!(recovered.consistent, "cut {cut}: prefix states are consistent");
        let got = rendered_state(
            &db,
            &recovered.store.symbols().lock().expect("recovered table"),
            &recovered.state,
        );
        assert_eq!(
            got, prefix_lines[survivors],
            "cut {cut}: recovered state must equal the {survivors}-op serial prefix"
        );
        cuts += 1;
    }
    assert_eq!(cuts, wal_bytes.len() + 1);
}

/// Snapshot isolation under load: a view taken mid-run never changes,
/// even while writers keep publishing newer epochs.
#[test]
fn read_views_stay_frozen_while_writers_advance() {
    const BLOCKS: usize = 4;
    let db = block_chain_scheme(BLOCKS, RELS_PER_BLOCK);
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let mut sym = SymbolTable::new();
    let streams = block_streams(&db, &mut sym, BLOCKS, 8);
    let hub = engine
        .hub(&DatabaseState::empty(&db), &guard)
        .expect("empty state is consistent");
    let writer = hub.write_handle();

    // Half the ops, then freeze a view.
    for stream in &streams {
        for (i, t) in &stream[..4] {
            assert!(writer.insert(*i, t.clone(), &guard).expect("within budget"));
        }
    }
    let frozen = hub.read_view();
    let frozen_epoch = frozen.epoch();
    let frozen_lines = rendered_state(&db, &sym, frozen.state());

    // The rest of the ops race from four threads.
    std::thread::scope(|s| {
        for c in 0..BLOCKS {
            let writer = writer.clone();
            let streams = &streams;
            let guard = &guard;
            s.spawn(move || {
                for (i, t) in &streams[c][4..] {
                    assert!(writer.insert(*i, t.clone(), guard).expect("within budget"));
                }
            });
        }
    });

    // The frozen view is bit-for-bit what it was; a fresh view moved on.
    assert_eq!(frozen.epoch(), frozen_epoch);
    assert_eq!(rendered_state(&db, &sym, frozen.state()), frozen_lines);
    assert_eq!(frozen.state().total_tuples(), BLOCKS * 4);
    let fresh = hub.read_view();
    assert!(fresh.epoch() > frozen_epoch);
    assert_eq!(fresh.state().total_tuples(), BLOCKS * 8);
    assert!(fresh.is_consistent());
}
