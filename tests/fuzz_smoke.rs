//! In-process differential-fuzzing smoke run — the test-suite twin of
//! the CI step `idr fuzz --seed 42 --cases 100`. A bounded number of
//! generated cases must replay with zero divergences across the four
//! oracles (parallel session, serial session, naive chase, Theorem 4.1
//! expressions).

use independence_reducible::oracle::fuzz;

#[test]
fn bounded_fuzz_is_divergence_free() {
    let summary = fuzz(42, 100, false, None);
    assert_eq!(summary.cases, 100);
    assert!(summary.ops_run > 0, "no ops executed");
    assert!(
        summary.is_clean(),
        "divergences:\n{}",
        summary
            .failures
            .iter()
            .map(|f| format!("  seed {}: {}", f.seed, f.divergence))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
