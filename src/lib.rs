//! # independence-reducible
//!
//! A from-scratch Rust reproduction of
//!
//! > E.P.F. Chan and H.J. Hernández, *Independence-reducible Database
//! > Schemes*, Proc. 7th ACM Symposium on Principles of Database Systems
//! > (PODS), Austin, 1988, pp. 163–173.
//!
//! The paper identifies a class of database schemes — the
//! **independence-reducible** schemes — that behave well for the two
//! problems classical dependency theory cares about:
//!
//! * **Query answering**: the schemes are *bounded*, so the X-total
//!   projection of the representative instance is computable by a
//!   predetermined relational expression instead of a chase
//!   ([`core::query`]).
//! * **Constraint enforcement**: the schemes are *algebraic-maintainable*
//!   (Algorithm 2), and exactly the *split-free* ones are
//!   *constant-time-maintainable* (Algorithm 5) —
//!   see [`core::maintain`] and [`core::split`].
//!
//! The recogniser ([`core::recognition::recognize`], the paper's
//! Algorithm 6) accepts exactly this class in polynomial time, and the
//! class strictly contains both previously known well-behaved classes:
//! Sagiv's independent schemes and the γ-acyclic cover-embedding BCNF
//! schemes ([`core::baselines`]).
//!
//! ## Quick start
//!
//! ```
//! use independence_reducible::prelude::*;
//!
//! // Example 1 of the paper: the university database.
//! let db = SchemeBuilder::new("CTHRSG")
//!     .scheme("R1", "HRC", ["HR"])
//!     .scheme("R2", "HTR", ["HT", "HR"])
//!     .scheme("R3", "HTC", ["HT"])
//!     .scheme("R4", "CSG", ["CS"])
//!     .scheme("R5", "HSR", ["HS"])
//!     .build()
//!     .unwrap();
//!
//! // Build the engine once: recognition, classification and the
//! // bounded-query expressions are computed up front or cached.
//! let engine = Engine::new(db);
//! let c = engine.classification();
//! assert!(!c.independent);           // not Sagiv-independent
//! assert!(!c.gamma_acyclic);         // not γ-acyclic
//! assert!(c.independence_reducible.is_some()); // but accepted!
//! assert_eq!(c.ctm, Some(true));     // and constant-time-maintainable
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`relation`] | universe, attribute bitsets, tuples, relations, states, relational algebra |
//! | [`fd`] | functional dependencies, closures, covers, keys, BCNF, uniqueness condition |
//! | [`chase`] | tableaux, the chase, weak instances, total projections, losslessness |
//! | [`hypergraph`] | connectivity, Bachman closure, u.m.c., α/γ-acyclicity |
//! | [`core`] | the paper: key-equivalence, Algorithms 1–6, KEP, splitness, recognition, maintenance, boundedness |
//! | [`workload`] | the paper's 13 worked examples as fixtures; synthetic scaling families |
//! | [`obs`] | dependency-free structured tracing, metrics and the chase-provenance event taxonomy |
//! | [`store`] | durable state: checksummed write-ahead log with group commit, atomic snapshots, crash recovery |
//! | [`sync`] | replication: WAL-shipping anti-entropy over chained digests, deterministic fault-scripted simulator, scenario files |
//! | [`oracle`] | seed-deterministic differential fuzzing: generators, six oracle arms (lockstep interpreters, crash-point recovery, replication convergence), shrinkers, corpus fixtures |
//!
//! The paper-to-code map — every numbered definition, lemma, theorem,
//! algorithm and example of the paper with the module and test that
//! realises it — lives in `docs/PAPER_MAP.md`.

#![warn(missing_docs)]

pub use idr_chase as chase;
pub use idr_core as core;
pub use idr_fd as fd;
pub use idr_hypergraph as hypergraph;
pub use idr_obs as obs;
pub use idr_oracle as oracle;
pub use idr_relation as relation;
pub use idr_store as store;
pub use idr_sync as sync;
pub use idr_workload as workload;

/// Budgeted, fault-tolerant execution: budgets, guards, the typed
/// [`ExecError`](exec::ExecError) taxonomy, retry policies and fault
/// injection. See DESIGN.md §"Failure model".
pub mod exec {
    pub use idr_core::exec::{
        Budget, CancelToken, ExecError, Fault, FaultInjector, FaultKind, FaultPlan, Guard,
        GuardSnapshot, RepAccess, Resource, RetryPolicy, StateAccess, DEFAULT_MAX_ENUMERATION,
    };
}

/// The most common imports for working with the library.
///
/// Every fallible entry point takes a [`Guard`](idr_relation::exec::Guard)
/// (pass [`Guard::unlimited`](idr_relation::exec::Guard::unlimited) for an
/// unbounded run). The pre-0.2 `*_bounded` twins were removed in 0.5 —
/// calls migrate by dropping the suffix and passing a `Guard`.
pub mod prelude {
    pub use idr_chase::{
        chase, chase_fast, is_consistent, representative_instance, total_projection,
    };
    pub use idr_core::classify::{classify, Classification};
    pub use idr_core::durability::{Durability, DurabilitySink, DurableOp};
    pub use idr_core::engine::{Engine, Session};
    pub use idr_core::engine::Observability;
    pub use idr_core::serving::{BatchOp, Hub, ReadView, Snapshot, WriteHandle};
    pub use idr_core::exec::{Budget, ExecError, Guard, GuardSnapshot, RetryPolicy};
    pub use idr_core::maintain::{CtmMaintainer, IrMaintainer, MaintenanceOutcome};
    pub use idr_obs::{EventLog, MetricsRegistry, TraceEvent, TraceHandle};
    pub use idr_core::query::{ir_total_projection, ir_total_projection_expr};
    pub use idr_core::recognition::{recognize, IrScheme, Recognition};
    pub use idr_fd::{Fd, FdParseError, FdSet, KeyDeps};
    pub use idr_relation::{
        state_of, AttrSet, Attribute, DatabaseScheme, DatabaseState, Relation, RelationScheme,
        SchemeBuilder, SymbolTable, Tuple, Universe, Value,
    };
}
