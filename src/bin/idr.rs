//! `idr` — command-line scheme analyser for the PODS'88 reproduction.
//!
//! Reads a database-scheme description and reports the full
//! classification, the independence-reducible partition (when accepted),
//! split keys, and — on request — the bounded expression for a total
//! projection.
//!
//! ## Scheme file format
//!
//! ```text
//! # comments and blank lines are ignored
//! universe: H R C T S G
//! scheme R1: H R C  keys H R
//! scheme R2: H T R  keys H T | H R
//! scheme R3: H T C  keys H T
//! scheme R4: C S G  keys C S
//! scheme R5: H S R  keys H S
//! ```
//!
//! Attribute names are whitespace-separated tokens; alternative keys are
//! separated by `|`.
//!
//! ## Usage
//!
//! ```text
//! idr classify <scheme-file>
//! idr project  <scheme-file> <ATTR> [<ATTR> ...]
//! idr demo                     # runs on the paper's Example 1
//! ```

use std::process::ExitCode;

use independence_reducible::core::query::ir_total_projection_expr;
use independence_reducible::core::split::split_keys;
use independence_reducible::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("classify") if args.len() == 2 => match load(&args[1]) {
            Ok(db) => {
                report(&db);
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        Some("project") if args.len() >= 3 => match load(&args[1]) {
            Ok(db) => project(&db, &args[2..]),
            Err(e) => fail(&e),
        },
        Some("demo") => {
            let db = SchemeBuilder::new("CTHRSG")
                .scheme("R1", "HRC", &["HR"])
                .scheme("R2", "HTR", &["HT", "HR"])
                .scheme("R3", "HTC", &["HT"])
                .scheme("R4", "CSG", &["CS"])
                .scheme("R5", "HSR", &["HS"])
                .build()
                .expect("demo scheme");
            report(&db);
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage:\n  idr classify <scheme-file>\n  idr project <scheme-file> <ATTR>...\n  idr demo"
            );
            ExitCode::FAILURE
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Parses the scheme file format described in the module docs.
fn parse_scheme(text: &str) -> Result<DatabaseScheme, String> {
    let mut universe = Universe::new();
    let mut universe_seen = false;
    let mut schemes: Vec<RelationScheme> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("universe:") {
            for tok in rest.split_whitespace() {
                universe
                    .add(tok)
                    .map_err(|e| at(&format!("{e}")))?;
            }
            universe_seen = true;
        } else if let Some(rest) = line.strip_prefix("scheme ") {
            if !universe_seen {
                return Err(at("'universe:' must come before schemes"));
            }
            let (name, body) = rest
                .split_once(':')
                .ok_or_else(|| at("expected 'scheme NAME: ATTRS keys K1 | K2'"))?;
            let (attrs_part, keys_part) = body
                .split_once("keys")
                .ok_or_else(|| at("missing 'keys' clause"))?;
            let mut attrs = AttrSet::empty();
            for tok in attrs_part.split_whitespace() {
                let a = universe
                    .attr(tok)
                    .ok_or_else(|| at(&format!("unknown attribute {tok:?}")))?;
                attrs.insert(a);
            }
            let mut keys = Vec::new();
            for alt in keys_part.split('|') {
                let mut k = AttrSet::empty();
                for tok in alt.split_whitespace() {
                    let a = universe
                        .attr(tok)
                        .ok_or_else(|| at(&format!("unknown attribute {tok:?}")))?;
                    k.insert(a);
                }
                if !k.is_empty() {
                    keys.push(k);
                }
            }
            schemes.push(
                RelationScheme::new(name.trim(), attrs, keys)
                    .map_err(|e| at(&format!("{e}")))?,
            );
        } else {
            return Err(at("expected 'universe:' or 'scheme ...'"));
        }
    }
    DatabaseScheme::new(universe, schemes).map_err(|e| format!("{e}"))
}

fn load(path: &str) -> Result<DatabaseScheme, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_scheme(&text)
}

fn report(db: &DatabaseScheme) {
    let kd = KeyDeps::of(db);
    let u = db.universe();
    println!("schemes:");
    for s in db.schemes() {
        let keys: Vec<String> = s.keys().iter().map(|&k| u.render(k)).collect();
        println!(
            "  {}({})  keys {{{}}}",
            s.name(),
            u.render(s.attrs()),
            keys.join(", ")
        );
    }
    println!("embedded key dependencies: {}", kd.full().render(u));
    let c = classify(db);
    println!("classification: {}", c.summary());
    match &c.independence_reducible {
        Some(ir) => {
            println!("independence-reducible partition:");
            for (b, block) in ir.partition.iter().enumerate() {
                let names: Vec<&str> =
                    block.iter().map(|&i| db.scheme(i).name()).collect();
                println!(
                    "  T{} = {{{}}}   ∪T{} = {}",
                    b + 1,
                    names.join(", "),
                    b + 1,
                    u.render(ir.block_attrs[b])
                );
                let splits = split_keys(db, &kd, block);
                for s in splits {
                    let places: Vec<&str> =
                        s.split_in.iter().map(|&i| db.scheme(i).name()).collect();
                    println!(
                        "    split key {} (in the closures of {})",
                        u.render(s.key),
                        places.join(", ")
                    );
                }
            }
            if c.ctm == Some(true) {
                println!("maintenance: constant-time (Algorithm 5 applies)");
            } else {
                println!("maintenance: algebraic (Algorithm 2 applies; not ctm — split keys above)");
            }
        }
        None => {
            println!("rejected by Algorithm 6: not independence-reducible.");
            println!("(boundedness/maintainability are not established for this scheme)");
        }
    }
}

fn project(db: &DatabaseScheme, attrs: &[String]) -> ExitCode {
    let kd = KeyDeps::of(db);
    let mut x = AttrSet::empty();
    for tok in attrs {
        match db.universe().attr(tok) {
            Some(a) => {
                x.insert(a);
            }
            None => return fail(&format!("unknown attribute {tok:?}")),
        }
    }
    let Some(ir) = recognize(db, &kd).accepted() else {
        return fail("scheme is not independence-reducible; no bounded expression exists");
    };
    match ir_total_projection_expr(db, &kd, &ir, x) {
        Some(expr) => {
            println!(
                "[{}] = {}",
                db.universe().render(x),
                expr.render(db)
            );
            ExitCode::SUCCESS
        }
        None => {
            println!(
                "[{}] is empty on every consistent state (no lossless cover)",
                db.universe().render(x)
            );
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = "
# Example 1 of the paper
universe: C T H R S G
scheme R1: H R C  keys H R
scheme R2: H T R  keys H T | H R
scheme R3: H T C  keys H T
scheme R4: C S G  keys C S
scheme R5: H S R  keys H S
";

    #[test]
    fn parses_example1() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        assert_eq!(db.len(), 5);
        assert_eq!(db.scheme(1).keys().len(), 2);
        let c = classify(&db);
        assert!(c.independence_reducible.is_some());
    }

    #[test]
    fn rejects_unknown_attribute() {
        let err = parse_scheme("universe: A B\nscheme R1: A Z keys A").unwrap_err();
        assert!(err.contains("unknown attribute"));
    }

    #[test]
    fn rejects_scheme_before_universe() {
        let err = parse_scheme("scheme R1: A keys A").unwrap_err();
        assert!(err.contains("universe"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let db = parse_scheme("# hi\n\nuniverse: A B\n# mid\nscheme R1: A B keys A\n").unwrap();
        assert_eq!(db.len(), 1);
    }
}
