//! `idr` — command-line scheme analyser for the PODS'88 reproduction.
//!
//! Every subcommand goes through the [`Engine`] facade: the scheme is
//! parsed once, Algorithm 6 runs once, and classification, bounded-query
//! expressions and chases are served from the engine's caches.
//!
//! ## Scheme file format
//!
//! ```text
//! # comments and blank lines are ignored
//! universe: H R C T S G
//! scheme R1: H R C  keys H R
//! scheme R2: H T R  keys H T | H R
//! scheme R3: H T C  keys H T
//! scheme R4: C S G  keys C S
//! scheme R5: H S R  keys H S
//! ```
//!
//! Attribute names are whitespace-separated tokens; alternative keys are
//! separated by `|`.
//!
//! ## State file format
//!
//! One tuple per line: the relation name, a colon, then `ATTR=value`
//! pairs covering exactly the relation's attributes.
//!
//! ```text
//! R1: H=h1 R=r1 C=c1
//! R4: C=c1 S=s1 G=g1
//! ```
//!
//! ## Usage
//!
//! ```text
//! idr classify <scheme-file>
//! idr project  <scheme-file> <ATTR> [<ATTR> ...]
//! idr chase    <scheme-file> <state-file>
//! idr query    <scheme-file> <state-file> <ATTR> [<ATTR> ...]
//! idr maintain <scheme-file> <state-file> <TUPLE> [<TUPLE> ...]
//! idr explain  <scheme-file> <state-file> <ATTR> [<ATTR> ...]
//! idr explain  <scheme-file> <state-file> --insert <TUPLE>
//! idr closure  <UNIVERSE> <FDS> <X>   # e.g. idr closure ABCD "AB->C, C->D" AB
//! idr fuzz     [--seed N] [--cases K] [--shrink] [--out DIR]
//! idr fuzz     --replay <fixture-file>
//! idr fuzz     --crash [--concurrent] [--seed N] [--cases K]
//! idr fuzz     --sync [--wire] [--seed N] [--cases K] [--out DIR]
//! idr fuzz     --concurrent [--seed N] [--cases K] [--out DIR]
//! idr fuzz     --batch [--seed N] [--cases K]
//! idr init     <data-dir> <scheme-file>
//! idr serve    --data-dir <dir> [--snapshot-every N] [--clients N] [--group-commit-window US] [--stats-every N] [--slow-op-us T]
//! idr serve    --data-dir <dir> --listen ADDR [--peer ADDR]... --origin K --origins N
//! idr recover  --data-dir <dir> [<ATTR> ...]
//! idr sync     [--wire] <scenario-file>   # scripted replication scenario
//! idr demo                            # runs on the paper's Example 1
//! ```
//!
//! `<TUPLE>` is one state-file line, quoted: `"R1: H=h2 R=r2 C=c9"`.
//!
//! ## Durable mode
//!
//! `idr init` creates a data directory: a copy of the scheme, an empty
//! epoch-0 snapshot and an empty write-ahead log. `idr serve` recovers
//! the directory and reads one op per stdin line — `insert R1: A=a B=b`,
//! `delete R1: A=a B=b`, `query A B`, `quit` — logging every mutation to
//! the WAL *before* applying it in memory, and (with `--snapshot-every`)
//! cutting a snapshot and rotating the log every N completed ops.
//! `--clients N` serves mutations through N concurrent writer lanes over
//! one shared hub (responses are tagged `[op K]` and may interleave);
//! `--group-commit-window US` lets a commit leader linger US
//! microseconds so concurrent lanes share one WAL batch and one fsync.
//! Queries answer from an epoch-stamped snapshot and never block the
//! lanes.
//! A `begin` line opens a framed op group: subsequent mutations buffer
//! until `commit` applies them as **one batch** — one dirty-row chase
//! seeding per touched block, one WAL batch, one fsync — with per-op
//! verdicts reported under the commit's `[op K]` tag. A typed error
//! rolls the whole group back (nothing applied, nothing logged). This
//! is the bulk-load fast path: see the README walkthrough for a
//! million-tuple transcript.
//! `idr recover` replays snapshot + WAL tail through the guarded engine,
//! reports what it found (records replayed, aborts honoured, torn bytes
//! truncated) and the re-earned consistency verdict; trailing attribute
//! names run one query against the recovered state. `idr fuzz --crash`
//! is the matching oracle: it cuts the WAL at every byte boundary,
//! recovers, and differentially compares state, verdict and answers
//! against a run that never crashed (exit 8 on any mismatch); with
//! `--concurrent` the live run is multi-writer over a group-commit
//! store, so the cuts land mid-batch and each prefix is checked
//! against a serial replay of the surviving committed order.
//!
//! `idr fuzz --concurrent` is the serving-layer oracle: client threads
//! race over one hub while the durability sink records the committed
//! op order, and a serial replay of that order must reproduce the
//! concurrent final state, verdict and query answers byte for byte
//! (Theorem 4.2's commutation claim under real threads). Divergences
//! shrink greedily and land as self-describing fixtures under `--out`.
//!
//! `idr fuzz` runs the differential oracle of the `idr-oracle` crate:
//! seed-deterministic generated cases replayed against four oracles in
//! lockstep (parallel session, serial session, from-scratch naive chase,
//! Theorem 4.1 expressions). Any divergence is written as a replayable
//! fixture under `--out` (default `target/fuzz-failures`) and the run
//! exits with code 8; `--shrink` minimises failures first, and
//! `--replay` re-runs one fixture file.
//!
//! ## Replication
//!
//! `idr sync <scenario-file>` runs one scripted replication scenario
//! through the deterministic simulator of the `idr-sync` crate: N
//! replicas ship write-ahead-log ranges to each other under digest-based
//! anti-entropy while a scripted adversary drops, delays, duplicates,
//! partitions and crashes. The round-by-round digest trace is printed,
//! then the converged state; a scenario that fails to converge inside
//! its round budget (or diverges outright) exits 8. The scenario format
//! is documented in `idr_sync::scenario` and demonstrated under
//! `examples/`. A scenario with `transport: wire` (or the `--wire`
//! flag) runs over real loopback sockets with journal files on disk
//! instead of the in-process simulator — same fault plan, same
//! convergence oracle. `idr fuzz --sync` is the matching oracle:
//! random op streams partitioned across replicas under random fault
//! plans, with every replica's converged state checked byte-for-byte
//! against a never-partitioned baseline; failures shrink to replayable
//! scenario files under `--out`. `idr fuzz --sync --wire` replays the
//! same scripted fault plans over loopback sockets.
//!
//! `idr serve --listen ADDR --peer ADDR --origin K --origins N` is the
//! real thing: replicas as separate processes exchanging the same
//! protocol frames over TCP, per-origin journals durable under
//! `DIR/sync/`. The wire contract — framing, handshake, digest-chain
//! verification, torn-frame semantics — is written down in
//! `docs/WIRE.md`.
//!
//! `idr maintain` routes each tuple through the paper's maintenance
//! algorithms (Algorithm 5 on constant-time-maintainable schemes,
//! Algorithm 2 otherwise) and reports the verdict plus selection counts.
//! Transient-fault handling is configurable: `--retries N` retries
//! injected transient faults up to N times and `--backoff-ms M` sets the
//! base of the exponential backoff between attempts (default: no
//! retries — every fault surfaces immediately).
//! `idr explain` reports chase provenance: for a query, the fd-firing
//! chain behind every derived cell of the X-total projection; with
//! `--insert`, why the tuple was rejected (the violated key dependency,
//! the witness rows, and the chains under which their key values came to
//! agree).
//!
//! Budget flags (accepted anywhere on the command line; every metered
//! computation is charged against the one [`Budget`] they build):
//!
//! * `--max-steps N` — cap on metered work units (chase steps, selections
//!   and enumerated subsets all count against it).
//! * `--timeout-ms N` — wall-clock deadline.
//! * `--serial` — disable block-parallel evaluation (results are
//!   identical; this only changes wall-clock).
//! * `--retries N` / `--backoff-ms M` — retry policy for transient
//!   faults in the maintenance path (see `idr maintain` above).
//!
//! Observability flags (also accepted anywhere):
//!
//! * `--trace[=text|json]` — emit the structured event stream to stderr
//!   after the command finishes (`text` is the default form). Traces are
//!   deterministic: `--serial` and parallel runs print identical streams.
//! * `--metrics PATH` — write a [`MetricsRegistry`] snapshot as
//!   single-line JSON to `PATH`.
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | state is inconsistent |
//! | 2 | usage error |
//! | 3 | parse error (scheme file, state file or FD spec) |
//! | 4 | scheme is not independence-reducible |
//! | 5 | budget exceeded (`--max-steps`) |
//! | 6 | timed out (`--timeout-ms`) |
//! | 7 | fault, cancellation, or a rejected replication handshake |
//! | 8 | differential fuzzing found a divergence (`idr fuzz`), or replicas failed to converge (`idr sync`) |

use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use independence_reducible::chase::{FiringInfo, RejectionExplanation};
use independence_reducible::core::split::split_keys;
use independence_reducible::exec::{Budget, ExecError, Guard, RetryPolicy};
use independence_reducible::obs;
use independence_reducible::prelude::*;
use independence_reducible::relation::parse::{parse_scheme, parse_state, parse_tuple_line};
use independence_reducible::store::{self, Store};

const EXIT_INCONSISTENT: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_PARSE: u8 = 3;
const EXIT_NOT_IR: u8 = 4;
const EXIT_BUDGET: u8 = 5;
const EXIT_TIMEOUT: u8 = 6;
const EXIT_FAULT: u8 = 7;
const EXIT_DIVERGENCE: u8 = 8;

/// Rendering requested by `--trace[=text|json]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    Text,
    Json,
}

/// The command line after stripping global flags.
struct CliOpts {
    args: Vec<String>,
    budget: Budget,
    parallel: bool,
    trace: Option<TraceFormat>,
    metrics: Option<String>,
    retry: RetryPolicy,
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_flags(&raw) {
        Ok(opts) => opts,
        Err(e) => return usage(&e),
    };
    let CliOpts {
        args,
        budget,
        parallel,
        trace,
        metrics,
        retry,
    } = opts;
    // The explain subcommand needs the merge forest even without --trace.
    let provenance =
        trace.is_some() || args.first().map(String::as_str) == Some("explain");
    let log = trace.map(|_| Arc::new(EventLog::new(1 << 20)));
    let registry = metrics.as_ref().map(|_| Arc::new(MetricsRegistry::new()));
    let obs = Observability {
        tracer: log
            .as_ref()
            .map(|l| TraceHandle::to_log(Arc::clone(l)))
            .unwrap_or_default(),
        metrics: registry.clone(),
        provenance,
    };
    let engine_for = |path: &str| -> Result<Engine, String> {
        Ok(Engine::new(load(path)?)
            .with_parallel(parallel)
            .with_observability(obs.clone()))
    };
    let code = match args.first().map(String::as_str) {
        Some("classify") if args.len() == 2 => match engine_for(&args[1]) {
            Ok(engine) => {
                report(&engine);
                ExitCode::SUCCESS
            }
            Err(e) => fail(EXIT_PARSE, &e),
        },
        Some("project") if args.len() >= 3 => match engine_for(&args[1]) {
            Ok(engine) => project(&engine, &args[2..], budget),
            Err(e) => fail(EXIT_PARSE, &e),
        },
        Some("chase") if args.len() == 3 => match engine_for(&args[1]) {
            Ok(engine) => chase_cmd(&engine, &args[2], budget),
            Err(e) => fail(EXIT_PARSE, &e),
        },
        Some("query") if args.len() >= 4 => match engine_for(&args[1]) {
            Ok(engine) => query_cmd(&engine, &args[2], &args[3..], budget),
            Err(e) => fail(EXIT_PARSE, &e),
        },
        Some("maintain") if args.len() >= 4 => match engine_for(&args[1]) {
            Ok(engine) => maintain_cmd(&engine, &args[2], &args[3..], budget, &retry),
            Err(e) => fail(EXIT_PARSE, &e),
        },
        Some("explain") if args.len() >= 4 => match engine_for(&args[1]) {
            Ok(engine) => explain_cmd(&engine, &args[2], &args[3..], budget),
            Err(e) => fail(EXIT_PARSE, &e),
        },
        Some("closure") if args.len() == 4 => closure(&args[1], &args[2], &args[3]),
        Some("fuzz") => fuzz_cmd(&args[1..], &obs),
        Some("init") if args.len() == 3 => init_cmd(&args[1], &args[2]),
        Some("serve") => serve_cmd(&args[1..], budget, &obs, parallel, &retry),
        Some("recover") => recover_cmd(&args[1..], budget, &obs, parallel),
        Some("sync") if args.len() >= 2 => sync_cmd(&args[1..], &obs),
        Some("demo") => {
            let db = SchemeBuilder::new("CTHRSG")
                .scheme("R1", "HRC", ["HR"])
                .scheme("R2", "HTR", ["HT", "HR"])
                .scheme("R3", "HTC", ["HT"])
                .scheme("R4", "CSG", ["CS"])
                .scheme("R5", "HSR", ["HS"])
                .build()
                .expect("demo scheme");
            report(
                &Engine::new(db)
                    .with_parallel(parallel)
                    .with_observability(obs.clone()),
            );
            ExitCode::SUCCESS
        }
        _ => usage("see the subcommand list"),
    };
    flush_obs(log.as_deref(), trace, registry.as_deref(), metrics.as_deref());
    code
}

/// Drains the trace ring to stderr and writes the metrics snapshot, as
/// requested by `--trace` / `--metrics`. Runs after the subcommand so
/// event emission never interleaves with result output.
fn flush_obs(
    log: Option<&EventLog>,
    format: Option<TraceFormat>,
    registry: Option<&MetricsRegistry>,
    metrics_path: Option<&str>,
) {
    if let (Some(log), Some(format)) = (log, format) {
        for e in log.drain() {
            match format {
                TraceFormat::Text => eprintln!("{}", e.render_text()),
                TraceFormat::Json => eprintln!("{}", e.to_json()),
            }
        }
        if log.dropped() > 0 {
            eprintln!("trace: {} event(s) dropped (ring full)", log.dropped());
        }
    }
    if let (Some(m), Some(path)) = (registry, metrics_path) {
        let snap = m.snapshot();
        // A `.prom` extension selects the text exposition format; any
        // other path gets the pinned JSON snapshot.
        let body = if path.ends_with(".prom") {
            obs::render_prometheus(&snap)
        } else {
            let mut json = snap.to_json();
            json.push('\n');
            json
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write metrics to {path}: {e}");
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "usage ({msg}):\n  idr classify <scheme-file>\n  idr project <scheme-file> <ATTR>...\n  idr chase <scheme-file> <state-file>\n  idr query <scheme-file> <state-file> <ATTR>...\n  idr maintain <scheme-file> <state-file> <TUPLE>...\n  idr explain <scheme-file> <state-file> <ATTR>... | --insert <TUPLE>\n  idr closure <UNIVERSE> <FDS> <X>\n  idr fuzz [--seed N] [--cases K] [--shrink] [--out DIR] | --replay FILE | --crash [--concurrent] | --sync [--wire] | --concurrent | --batch\n  idr init <data-dir> <scheme-file>\n  idr serve --data-dir DIR [--snapshot-every N] [--clients N] [--group-commit-window US] [--stats-every N] [--slow-op-us T]   (ops from stdin; `.stats` prints live stats)\n  idr serve --data-dir DIR --listen ADDR [--peer ADDR]... --origin K --origins N [--sync-interval-ms MS]   (networked replication; see docs/WIRE.md)\n  idr recover --data-dir DIR [<ATTR>...]\n  idr sync [--wire] <scenario-file>\n  idr demo\noptions: --max-steps N, --timeout-ms N, --serial, --retries N, --backoff-ms M, --trace[=text|json], --metrics PATH (.prom extension selects text exposition)\n<TUPLE> is a quoted state line, e.g. \"R1: H=h2 R=r2 C=c9\""
    );
    ExitCode::from(EXIT_USAGE)
}

fn fail(code: u8, msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(code)
}

/// Strips the global flags out of the argument list: `--max-steps N` /
/// `--timeout-ms N` fold into one [`Budget`] (`--max-steps` caps every
/// metered resource — chase steps, single-tuple selections and enumerated
/// subsets — since from the command line they are all just "work");
/// `--serial`, `--trace[=text|json]` and `--metrics PATH` set their
/// respective [`CliOpts`] fields; `--retries N` and `--backoff-ms M`
/// build the transient-fault [`RetryPolicy`] used by `idr maintain`
/// (default: no retries).
fn parse_flags(raw: &[String]) -> Result<CliOpts, String> {
    let mut args = Vec::new();
    let mut budget = Budget::unlimited();
    let mut parallel = true;
    let mut trace = None;
    let mut metrics = None;
    let mut retries = 0u32;
    let mut backoff_ms = None;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let numeric = |flag: &str| -> Result<u64, String> {
            it.clone()
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{flag} needs an unsigned integer"))
        };
        match a.as_str() {
            "--max-steps" => {
                let n = numeric("--max-steps")?;
                it.next();
                budget = budget
                    .with_max_chase_steps(n)
                    .with_max_lookups(n)
                    .with_max_enumeration(n);
            }
            "--timeout-ms" => {
                let ms = numeric("--timeout-ms")?;
                it.next();
                budget = budget.with_timeout(std::time::Duration::from_millis(ms));
            }
            "--serial" => parallel = false,
            "--retries" => {
                let n = numeric("--retries")?;
                it.next();
                retries = u32::try_from(n)
                    .map_err(|_| "--retries needs a value that fits in u32".to_string())?;
            }
            "--backoff-ms" => {
                let ms = numeric("--backoff-ms")?;
                it.next();
                backoff_ms = Some(ms);
            }
            "--trace" | "--trace=text" => trace = Some(TraceFormat::Text),
            "--trace=json" => trace = Some(TraceFormat::Json),
            "--metrics" => {
                metrics = Some(
                    it.next()
                        .ok_or_else(|| "--metrics needs a path".to_string())?
                        .clone(),
                );
            }
            other if other.starts_with("--trace=") => {
                return Err(format!(
                    "unknown trace format {:?} (expected text or json)",
                    &other["--trace=".len()..]
                ));
            }
            _ => args.push(a.clone()),
        }
    }
    if backoff_ms.is_some() && retries == 0 {
        return Err("--backoff-ms only applies together with --retries".to_string());
    }
    let mut retry = RetryPolicy::retries(retries);
    if let Some(ms) = backoff_ms {
        retry = retry.with_base_backoff(std::time::Duration::from_millis(ms));
    }
    Ok(CliOpts {
        args,
        budget,
        parallel,
        trace,
        metrics,
        retry,
    })
}

/// Maps a typed execution error to its documented exit code.
fn exec_exit(e: &ExecError) -> u8 {
    match e {
        ExecError::BudgetExceeded { .. } => EXIT_BUDGET,
        ExecError::TimedOut { .. } => EXIT_TIMEOUT,
        ExecError::Cancelled | ExecError::Faulted { .. } => EXIT_FAULT,
        ExecError::Inconsistent { .. } => EXIT_INCONSISTENT,
        // Not resumable — retrying with a larger budget cannot help, so
        // it is a fault, not a budget trip.
        ExecError::CapacityExceeded { .. } => EXIT_FAULT,
    }
}

/// Maps a durability-layer error to its documented exit code. Every
/// [`store::StoreError`] variant is a fault (exit 7); the match is
/// exhaustive so adding a variant forces an explicit decision here.
fn store_exit(e: &store::StoreError) -> u8 {
    match e {
        store::StoreError::Io { .. }
        | store::StoreError::Corrupt { .. }
        | store::StoreError::Format { .. }
        | store::StoreError::Replay { .. } => EXIT_FAULT,
    }
}

fn load(path: &str) -> Result<DatabaseScheme, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_scheme(&text)
}

fn load_state(
    path: &str,
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
) -> Result<DatabaseState, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_state(&text, db, symbols)
}

fn report(engine: &Engine) {
    let db = engine.scheme();
    let kd = engine.key_deps();
    let u = db.universe();
    println!("schemes:");
    for s in db.schemes() {
        let keys: Vec<String> = s.keys().iter().map(|&k| u.render(k)).collect();
        println!(
            "  {}({})  keys {{{}}}",
            s.name(),
            u.render(s.attrs()),
            keys.join(", ")
        );
    }
    println!("embedded key dependencies: {}", kd.full().render(u));
    let c = engine.classification();
    println!("classification: {}", c.summary());
    match &c.independence_reducible {
        Some(ir) => {
            println!("independence-reducible partition:");
            for (b, block) in ir.partition.iter().enumerate() {
                let names: Vec<&str> =
                    block.iter().map(|&i| db.scheme(i).name()).collect();
                println!(
                    "  T{} = {{{}}}   ∪T{} = {}",
                    b + 1,
                    names.join(", "),
                    b + 1,
                    u.render(ir.block_attrs[b])
                );
                let splits = split_keys(db, kd, block);
                for s in splits {
                    let places: Vec<&str> =
                        s.split_in.iter().map(|&i| db.scheme(i).name()).collect();
                    println!(
                        "    split key {} (in the closures of {})",
                        u.render(s.key),
                        places.join(", ")
                    );
                }
            }
            if c.ctm == Some(true) {
                println!("maintenance: constant-time (Algorithm 5 applies)");
            } else {
                println!("maintenance: algebraic (Algorithm 2 applies; not ctm — split keys above)");
            }
        }
        None => {
            println!("rejected by Algorithm 6: not independence-reducible.");
            println!("(boundedness/maintainability are not established for this scheme)");
        }
    }
}

/// Parses `attrs` against the engine's universe.
fn parse_attrs(engine: &Engine, attrs: &[String]) -> Result<AttrSet, String> {
    let mut x = AttrSet::empty();
    for tok in attrs {
        match engine.scheme().universe().attr(tok) {
            Some(a) => {
                x.insert(a);
            }
            None => return Err(format!("unknown attribute {tok:?}")),
        }
    }
    Ok(x)
}

fn project(engine: &Engine, attrs: &[String], budget: Budget) -> ExitCode {
    let x = match parse_attrs(engine, attrs) {
        Ok(x) => x,
        Err(e) => return fail(EXIT_PARSE, &e),
    };
    if engine.ir().is_none() {
        return fail(
            EXIT_NOT_IR,
            "scheme is not independence-reducible; no bounded expression exists",
        );
    }
    let guard = Guard::new(budget);
    let u = engine.scheme().universe();
    match engine.total_projection_expr(x, &guard) {
        Ok(Some(expr)) => {
            println!("[{}] = {}", u.render(x), expr.render(engine.scheme()));
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!(
                "[{}] is empty on every consistent state (no lossless cover)",
                u.render(x)
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(exec_exit(&e), &format!("{e}")),
    }
}

/// `idr chase <scheme-file> <state-file>`: chases the state (per block,
/// in parallel unless `--serial`) and reports the consistency verdict.
fn chase_cmd(engine: &Engine, state_path: &str, budget: Budget) -> ExitCode {
    let mut symbols = SymbolTable::new();
    let state = match load_state(state_path, engine.scheme(), &mut symbols) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_PARSE, &e),
    };
    let guard = Guard::new(budget);
    match engine.hub(&state, &guard) {
        Ok(hub) => {
            let stats = hub.chase_stats();
            if hub.is_consistent() {
                println!(
                    "consistent ({} tuples, {} chase passes, {} rule applications)",
                    state.total_tuples(),
                    stats.passes,
                    stats.rule_applications
                );
                ExitCode::SUCCESS
            } else {
                let blocks: Vec<String> = hub
                    .inconsistent_blocks()
                    .iter()
                    .map(|b| format!("T{}", b + 1))
                    .collect();
                println!("inconsistent (blocks: {})", blocks.join(", "));
                ExitCode::from(EXIT_INCONSISTENT)
            }
        }
        Err(e) => fail(exec_exit(&e), &format!("{e}")),
    }
}

/// `idr query <scheme-file> <state-file> <ATTR>...`: the X-total
/// projection of the state's representative instance — chase-free on
/// independence-reducible schemes.
fn query_cmd(engine: &Engine, state_path: &str, attrs: &[String], budget: Budget) -> ExitCode {
    let x = match parse_attrs(engine, attrs) {
        Ok(x) => x,
        Err(e) => return fail(EXIT_PARSE, &e),
    };
    let mut symbols = SymbolTable::new();
    let state = match load_state(state_path, engine.scheme(), &mut symbols) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_PARSE, &e),
    };
    let guard = Guard::new(budget);
    let u = engine.scheme().universe();
    match engine.total_projection(&state, x, &guard) {
        Ok(Some(tuples)) => {
            println!("[{}]: {} tuple(s)", u.render(x), tuples.len());
            for t in &tuples {
                println!("  {}", t.render(u, &symbols));
            }
            ExitCode::SUCCESS
        }
        Ok(None) => fail(EXIT_INCONSISTENT, "state is inconsistent"),
        Err(e) => fail(exec_exit(&e), &format!("{e}")),
    }
}

/// Renders one fd-firing chain (oldest first); `given` when the cell was
/// born with its symbol.
fn render_chain(db: &DatabaseScheme, chain: &[FiringInfo]) -> String {
    if chain.is_empty() {
        return "given".to_string();
    }
    let u = db.universe();
    chain
        .iter()
        .map(|f| {
            format!(
                "{} equated {} of rows {} ({}) and {} ({})",
                f.fd.render(u),
                u.name(f.column),
                f.rows.0,
                tag_name(db, f.tags.0),
                f.rows.1,
                tag_name(db, f.tags.1),
            )
        })
        .collect::<Vec<_>>()
        .join("; then ")
}

/// The relation a tableau row came from, when tagged.
fn tag_name(db: &DatabaseScheme, tag: Option<usize>) -> String {
    match tag {
        Some(i) => db.scheme(i).name().to_string(),
        None => "untagged".to_string(),
    }
}

/// `idr maintain <scheme-file> <state-file> <TUPLE>...`: routes each
/// insertion through Algorithm 5 (on constant-time-maintainable schemes)
/// or Algorithm 2, reporting the verdict and the selection counts of the
/// paper's cost model.
fn maintain_cmd(
    engine: &Engine,
    state_path: &str,
    tuples: &[String],
    budget: Budget,
    retry: &RetryPolicy,
) -> ExitCode {
    let Some(ir) = engine.ir() else {
        return fail(
            EXIT_NOT_IR,
            "scheme is not independence-reducible; the maintenance algorithms do not apply",
        );
    };
    let db = engine.scheme();
    let u = db.universe();
    let mut symbols = SymbolTable::new();
    let state = match load_state(state_path, db, &mut symbols) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_PARSE, &e),
    };
    let guard = Guard::new(budget);
    let tracer = engine.observability().tracer.clone();
    let ctm = engine.classification().ctm == Some(true);
    enum Maintainer {
        Ctm(CtmMaintainer),
        Ir(IrMaintainer),
    }
    let mut m = if ctm {
        match CtmMaintainer::new(db, ir, &state, &guard) {
            Ok(m) => Maintainer::Ctm(m.with_tracer(tracer)),
            Err(e) => return fail(exec_exit(&e), &format!("{e}")),
        }
    } else {
        match IrMaintainer::new(db, ir, &state, &guard) {
            Ok(m) => Maintainer::Ir(m.with_tracer(tracer)),
            Err(e) => return fail(exec_exit(&e), &format!("{e}")),
        }
    };
    println!(
        "maintenance: {}",
        if ctm {
            "Algorithm 5 (constant-time)"
        } else {
            "Algorithm 2 (algebraic)"
        }
    );
    let mut all_accepted = true;
    for spec in tuples {
        let (i, t) = match parse_tuple_line(spec, db, &mut symbols) {
            Ok(p) => p,
            Err(e) => return fail(EXIT_PARSE, &e),
        };
        let result = match &mut m {
            Maintainer::Ctm(m) => m.insert(i, t.clone(), &guard, retry),
            Maintainer::Ir(m) => m.insert(i, t.clone(), &guard, retry),
        };
        match result {
            Ok((outcome, stats)) => {
                let verdict = if outcome.is_consistent() {
                    "consistent"
                } else {
                    "inconsistent — rejected"
                };
                println!(
                    "  {} + {}: {verdict}  ({} selection(s), {} key(s))",
                    db.scheme(i).name(),
                    t.render(u, &symbols),
                    stats.lookups,
                    stats.keys_processed
                );
                all_accepted &= outcome.is_consistent();
            }
            Err(e) => return fail(exec_exit(&e), &format!("{e}")),
        }
    }
    if all_accepted {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_INCONSISTENT)
    }
}

/// Prints the full provenance of a rejected insert: the violated key
/// dependency, the clash column, the witness rows, and the fd-firing
/// chains under which their left-hand sides came to agree (the Lemma 3.8
/// witness structure).
fn render_rejection(db: &DatabaseScheme, r: &RejectionExplanation) {
    let u = db.universe();
    println!("  violated key dependency: {}", r.fd.render(u));
    println!(
        "  clash column {}, witness rows {} (from {}) and {} (from {})",
        u.name(r.column),
        r.rows.0,
        tag_name(db, r.tags.0),
        r.rows.1,
        tag_name(db, r.tags.1)
    );
    for (a, left, right) in &r.lhs {
        println!("  agreement on {}:", u.name(*a));
        println!("    row {}: {}", r.rows.0, render_chain(db, left));
        println!("    row {}: {}", r.rows.1, render_chain(db, right));
    }
    println!("  clash on {}:", u.name(r.column));
    println!("    row {}: {}", r.rows.0, render_chain(db, &r.clash.0));
    println!("    row {}: {}", r.rows.1, render_chain(db, &r.clash.1));
}

/// `idr explain <scheme-file> <state-file> <ATTR>...` — chase provenance
/// for every tuple of the X-total projection — or
/// `idr explain <scheme-file> <state-file> --insert <TUPLE>` — why an
/// insert is rejected.
fn explain_cmd(
    engine: &Engine,
    state_path: &str,
    rest: &[String],
    budget: Budget,
) -> ExitCode {
    let db = engine.scheme();
    let u = db.universe();
    let mut symbols = SymbolTable::new();
    let state = match load_state(state_path, db, &mut symbols) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_PARSE, &e),
    };
    let guard = Guard::new(budget);
    if rest[0] == "--insert" {
        if rest.len() != 2 {
            return usage("--insert takes exactly one quoted tuple");
        }
        let (i, t) = match parse_tuple_line(&rest[1], db, &mut symbols) {
            Ok(p) => p,
            Err(e) => return fail(EXIT_PARSE, &e),
        };
        let hub = match engine.hub(&state, &guard) {
            Ok(h) => h,
            Err(e) => return fail(exec_exit(&e), &format!("{e}")),
        };
        if !hub.is_consistent() {
            return fail(EXIT_INCONSISTENT, "initial state is already inconsistent");
        }
        let writer = hub.write_handle();
        match writer.insert(i, t.clone(), &guard) {
            Ok(true) => {
                println!(
                    "insert accepted: {}: {} (state stays consistent — nothing to explain)",
                    db.scheme(i).name(),
                    t.render(u, &symbols)
                );
                ExitCode::SUCCESS
            }
            Ok(false) => {
                println!(
                    "insert rejected: {}: {}",
                    db.scheme(i).name(),
                    t.render(u, &symbols)
                );
                match writer.explain_rejection() {
                    Some(r) => render_rejection(db, &r),
                    None => println!("  (no rejection record)"),
                }
                ExitCode::from(EXIT_INCONSISTENT)
            }
            Err(e) => fail(exec_exit(&e), &format!("{e}")),
        }
    } else {
        let x = match parse_attrs(engine, rest) {
            Ok(x) => x,
            Err(e) => return fail(EXIT_PARSE, &e),
        };
        let hub = match engine.hub(&state, &guard) {
            Ok(h) => h,
            Err(e) => return fail(exec_exit(&e), &format!("{e}")),
        };
        let tuples = match hub.read_view().total_projection(x, &guard) {
            Ok(Some(ts)) => ts,
            Ok(None) => return fail(EXIT_INCONSISTENT, "state is inconsistent"),
            Err(e) => return fail(exec_exit(&e), &format!("{e}")),
        };
        println!("[{}]: {} tuple(s)", u.render(x), tuples.len());
        for t in &tuples {
            println!("  {}", t.render(u, &symbols));
            match hub.explain(x, t) {
                Some(exp) => {
                    println!(
                        "    witness: tableau row {} (from {})",
                        exp.row,
                        tag_name(db, exp.tag)
                    );
                    for cell in &exp.cells {
                        println!(
                            "      {}: {}",
                            u.name(cell.column),
                            render_chain(db, &cell.chain)
                        );
                    }
                }
                None => println!("    (no witness row found)"),
            }
        }
        ExitCode::SUCCESS
    }
}

/// Fuzz-specific options (after global flag stripping).
struct FuzzOpts {
    seed: u64,
    cases: usize,
    shrink: bool,
    out: String,
    replay: Option<String>,
    crash: bool,
    sync: bool,
    wire: bool,
    concurrent: bool,
    batch: bool,
}

fn parse_fuzz_flags(rest: &[String]) -> Result<FuzzOpts, String> {
    let mut opts = FuzzOpts {
        seed: 42,
        cases: 100,
        shrink: false,
        out: "target/fuzz-failures".to_string(),
        replay: None,
        crash: false,
        sync: false,
        wire: false,
        concurrent: false,
        batch: false,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an unsigned integer".to_string())?;
            }
            "--cases" => {
                opts.cases = value("--cases")?
                    .parse()
                    .map_err(|_| "--cases needs an unsigned integer".to_string())?;
            }
            "--shrink" => opts.shrink = true,
            "--out" => opts.out = value("--out")?,
            "--replay" => opts.replay = Some(value("--replay")?),
            "--crash" => opts.crash = true,
            "--sync" => opts.sync = true,
            "--wire" => opts.wire = true,
            "--concurrent" => opts.concurrent = true,
            "--batch" => opts.batch = true,
            other => return Err(format!("unknown fuzz option {other:?}")),
        }
    }
    Ok(opts)
}

/// `idr fuzz`: differential fuzzing against the oracles of the
/// `idr-oracle` crate — the four-oracle lockstep run by default, the
/// crash-recovery arm with `--crash` (multi-writer group-commit cuts
/// with `--crash --concurrent`), the replication-convergence arm with
/// `--sync`, the serial==concurrent serving-layer arm with
/// `--concurrent`, and the batch==per-op pipeline arm with `--batch`.
/// Divergences become replayable fixtures under `--out` and the run
/// exits with [`EXIT_DIVERGENCE`].
fn fuzz_cmd(rest: &[String], obs: &Observability) -> ExitCode {
    use independence_reducible::oracle;
    let opts = match parse_fuzz_flags(rest) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    if opts.wire && !opts.sync {
        return usage("--wire only applies together with --sync");
    }
    if opts.batch {
        if opts.replay.is_some() || opts.shrink || opts.crash || opts.sync || opts.concurrent {
            return usage(
                "--batch cannot be combined with --replay, --shrink, --crash, --sync or --concurrent",
            );
        }
        let mut progress = |done: usize, failures: usize| {
            if done.is_multiple_of(50) {
                eprintln!(
                    "batch fuzz: {done}/{} cases, {failures} failure(s)",
                    opts.cases
                );
            }
        };
        let summary = oracle::batch_fuzz(opts.seed, opts.cases, Some(&mut progress));
        println!(
            "batch fuzz: {} case(s) from seed {}, {} framed group(s) committed, {} op(s) applied, {} failure(s)",
            summary.cases,
            opts.seed,
            summary.groups,
            summary.ops_run,
            summary.failures.len()
        );
        for f in summary.failures.iter().take(10) {
            println!("  {f}");
        }
        return if summary.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_DIVERGENCE)
        };
    }
    if opts.sync {
        if opts.replay.is_some() || opts.shrink || opts.crash || opts.concurrent {
            return usage(
                "--sync cannot be combined with --replay, --shrink, --crash or --concurrent",
            );
        }
        let transport = if opts.wire {
            independence_reducible::sync::Transport::Wire
        } else {
            independence_reducible::sync::Transport::Sim
        };
        let label = if opts.wire { "wire sync fuzz" } else { "sync fuzz" };
        let mut progress = |done: usize, failures: usize| {
            if done.is_multiple_of(50) {
                eprintln!("{label}: {done}/{} cases, {failures} failure(s)", opts.cases);
            }
        };
        let summary = oracle::sync_fuzz(opts.seed, opts.cases, transport, Some(&mut progress));
        println!(
            "{label}: {} case(s) from seed {}, {} round(s) {}, {} op(s) shipped, {} crash(es) fired, {} failure(s)",
            summary.cases,
            opts.seed,
            summary.rounds,
            if opts.wire { "run on loopback sockets" } else { "simulated" },
            summary.ops_shipped,
            summary.crashes,
            summary.failures.len()
        );
        if summary.is_clean() {
            return ExitCode::SUCCESS;
        }
        if let Err(e) = std::fs::create_dir_all(&opts.out) {
            return fail(EXIT_PARSE, &format!("cannot create {}: {e}", opts.out));
        }
        for f in &summary.failures {
            println!("  {f}");
            let path = format!("{}/sync-{}.txt", opts.out, f.seed);
            match std::fs::write(&path, &f.scenario) {
                Ok(()) => println!("    repro written to {path} (replay with idr sync)"),
                Err(e) => eprintln!("    cannot write {path}: {e}"),
            }
        }
        return ExitCode::from(EXIT_DIVERGENCE);
    }
    if opts.crash {
        if opts.replay.is_some() || opts.shrink {
            return usage("--crash cannot be combined with --replay or --shrink");
        }
        let label = if opts.concurrent {
            "concurrent crash fuzz"
        } else {
            "crash fuzz"
        };
        let mut progress = |done: usize, failures: usize| {
            if done.is_multiple_of(50) {
                eprintln!("{label}: {done}/{} cases, {failures} failure(s)", opts.cases);
            }
        };
        let summary = if opts.concurrent {
            oracle::concurrent_crash_fuzz(opts.seed, opts.cases, Some(&mut progress))
        } else {
            oracle::crash_fuzz(opts.seed, opts.cases, Some(&mut progress))
        };
        println!(
            "{label}: {} case(s) from seed {}, {} crash point(s) recovered, {} op(s) replayed, {} failure(s)",
            summary.cases,
            opts.seed,
            summary.crash_points,
            summary.ops_run,
            summary.failures.len()
        );
        for f in summary.failures.iter().take(10) {
            println!("  {f}");
        }
        return if summary.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_DIVERGENCE)
        };
    }
    if opts.concurrent {
        if opts.replay.is_some() || opts.shrink {
            return usage("--concurrent cannot be combined with --replay or --shrink");
        }
        let mut progress = |done: usize, failures: usize| {
            if done.is_multiple_of(50) {
                eprintln!(
                    "concurrent fuzz: {done}/{} cases, {failures} failure(s)",
                    opts.cases
                );
            }
        };
        let summary = oracle::concurrent_fuzz_with(
            opts.seed,
            opts.cases,
            Some(&mut progress),
            obs.metrics.clone(),
        );
        println!(
            "concurrent fuzz: {} case(s) from seed {}, {} client thread(s) raced, {} op(s) committed, {} failure(s)",
            summary.cases,
            opts.seed,
            summary.clients,
            summary.ops_run,
            summary.failures.len()
        );
        if summary.is_clean() {
            return ExitCode::SUCCESS;
        }
        if let Err(e) = std::fs::create_dir_all(&opts.out) {
            return fail(EXIT_PARSE, &format!("cannot create {}: {e}", opts.out));
        }
        for f in &summary.failures {
            println!("  {f}");
            if f.fixture.is_empty() {
                continue;
            }
            let path = format!("{}/concurrent-{}.txt", opts.out, f.seed);
            match std::fs::write(&path, &f.fixture) {
                Ok(()) => println!("    repro written to {path}"),
                Err(e) => eprintln!("    cannot write {path}: {e}"),
            }
        }
        return ExitCode::from(EXIT_DIVERGENCE);
    }
    if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(EXIT_PARSE, &format!("cannot read {path}: {e}")),
        };
        let case = match oracle::Case::parse(&text) {
            Ok(c) => c,
            Err(e) => return fail(EXIT_PARSE, &format!("{path}: {e}")),
        };
        return match oracle::run_case_guarded(&case) {
            Ok(report) => {
                println!(
                    "replay ok: {} op(s), all oracles agree (final state {})",
                    report.ops_run,
                    if report.final_consistent {
                        "consistent"
                    } else {
                        "inconsistent"
                    }
                );
                ExitCode::SUCCESS
            }
            Err(d) => {
                println!("replay diverges: {d}");
                ExitCode::from(EXIT_DIVERGENCE)
            }
        };
    }
    let mut progress = |done: usize, failures: usize| {
        if done.is_multiple_of(100) {
            eprintln!("fuzz: {done}/{} cases, {failures} divergence(s)", opts.cases);
        }
    };
    let summary = oracle::fuzz(opts.seed, opts.cases, opts.shrink, Some(&mut progress));
    println!(
        "fuzz: {} case(s) from seed {}, {} op(s) executed, {} final state(s) consistent, {} divergence(s)",
        summary.cases,
        opts.seed,
        summary.ops_run,
        summary.consistent,
        summary.failures.len()
    );
    if summary.is_clean() {
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        return fail(EXIT_PARSE, &format!("cannot create {}: {e}", opts.out));
    }
    for f in &summary.failures {
        println!("  seed {}: {}", f.seed, f.divergence);
        let path = format!("{}/case-{}.txt", opts.out, f.seed);
        let text = match &f.shrunk {
            Some((case, d)) => {
                println!("    shrunk to {} op(s), still: {d}", case.ops.len());
                case.render()
            }
            None => f.case.render(),
        };
        match std::fs::write(&path, text) {
            Ok(()) => println!("    repro written to {path}"),
            Err(e) => eprintln!("    cannot write {path}: {e}"),
        }
    }
    ExitCode::from(EXIT_DIVERGENCE)
}

/// `idr sync [--wire] <scenario-file>`: runs one scripted replication
/// scenario and prints the round-by-round digest trace. The scenario's
/// own `transport:` directive picks the deterministic in-process
/// simulator (the default) or the loopback-socket wire runner;
/// `--wire` forces the wire runner regardless. Exit 0 when the
/// replicas converge to a byte-identical state inside the round
/// budget, [`EXIT_DIVERGENCE`] otherwise, [`EXIT_PARSE`] on a
/// malformed scenario file.
fn sync_cmd(rest: &[String], obs: &Observability) -> ExitCode {
    use independence_reducible::sync;
    let mut path = None;
    let mut wire = false;
    for a in rest {
        match a.as_str() {
            "--wire" => wire = true,
            _ if path.is_none() => path = Some(a.as_str()),
            other => return usage(&format!("sync takes one scenario file, got extra {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage("sync needs a scenario file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(EXIT_PARSE, &format!("cannot read {path}: {e}")),
    };
    let mut scenario = match sync::parse_scenario(&text) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_PARSE, &format!("{path}: {e}")),
    };
    if wire {
        scenario.transport = sync::Transport::Wire;
    }
    let report = match scenario.run_with(obs.tracer.clone(), obs.metrics.clone()) {
        Ok(r) => r,
        Err(e) => return fail(exec_exit(&e), &format!("{e}")),
    };
    for line in &report.trace {
        println!("{line}");
    }
    println!(
        "sync: {} replica(s), {} round(s), {} op(s) shipped, {} message(s) sent ({} dropped, {} duplicated, {} delayed), {} crash(es)",
        scenario.replicas,
        report.rounds,
        report.ops_shipped,
        report.messages_sent,
        report.dropped,
        report.duplicated,
        report.delayed,
        report.crashes
    );
    if let Some(d) = &report.diverged {
        return fail(EXIT_DIVERGENCE, &format!("replicas diverged: {d}"));
    }
    if !report.converged {
        return fail(
            EXIT_DIVERGENCE,
            &format!("replicas did not converge within {} round(s)", scenario.max_rounds),
        );
    }
    println!(
        "converged: {} tuple(s), {}",
        report.state_lines.len(),
        if report.consistent {
            "consistent"
        } else {
            "inconsistent"
        }
    );
    for l in &report.state_lines {
        println!("  {l}");
    }
    ExitCode::SUCCESS
}

/// `idr closure <UNIVERSE> <FDS> <X>`: parses the FD list with the typed
/// parser and prints the attribute closure `X⁺`.
fn closure(universe_chars: &str, fd_spec: &str, x_chars: &str) -> ExitCode {
    let universe = Universe::of_chars(universe_chars);
    let fds = match FdSet::try_parse(&universe, fd_spec) {
        Ok(f) => f,
        Err(e) => return fail(EXIT_PARSE, &format!("{e}")),
    };
    let x = match universe.try_set_of(x_chars) {
        Ok(x) => x,
        Err(c) => return fail(EXIT_PARSE, &format!("unknown attribute {c:?} in {x_chars:?}")),
    };
    println!(
        "{}+ = {}   (under {})",
        universe.render(x),
        universe.render(fds.closure(x)),
        fds.render(&universe)
    );
    ExitCode::SUCCESS
}

/// `idr init <data-dir> <scheme-file>`: creates a fresh durable data
/// directory — a copy of the scheme, an empty epoch-0 snapshot and an
/// empty write-ahead log.
fn init_cmd(dir: &str, scheme_path: &str) -> ExitCode {
    let db = match load(scheme_path) {
        Ok(db) => db,
        Err(e) => return fail(EXIT_PARSE, &e),
    };
    match Store::init(Path::new(dir), &db) {
        Ok(store) => {
            println!(
                "initialised {dir}: {} scheme(s), epoch {}",
                db.schemes().len(),
                store.epoch()
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(store_exit(&e), &format!("{e}")),
    }
}

/// Durable-mode flags shared by `serve` and `recover`: `--data-dir DIR`
/// (required); `--snapshot-every N`, `--clients N` and
/// `--group-commit-window US` (serve only); plus whatever positional
/// arguments remain.
struct StoreOpts {
    dir: String,
    snapshot_every: Option<u64>,
    clients: Option<usize>,
    group_commit_window_us: Option<u64>,
    /// Print a one-line stats summary every N completed ops.
    stats_every: Option<u64>,
    /// Emit a structured slow-op record to stderr for ops at or above
    /// this many microseconds end to end.
    slow_op_us: Option<u64>,
    /// Networked replication (serve only): the address to accept
    /// anti-entropy exchanges on. Presence of `--listen` selects peer
    /// mode; port 0 binds an ephemeral port, written to
    /// `DIR/listen.addr` either way.
    listen: Option<String>,
    /// Peer addresses to initiate periodic exchanges with (repeatable).
    peers: Vec<String>,
    /// This node's origin id within the replica group.
    origin: Option<usize>,
    /// The replica-group size.
    origins: Option<usize>,
    /// Milliseconds between exchange rounds with each peer.
    sync_interval_ms: Option<u64>,
    rest: Vec<String>,
}

fn parse_store_flags(rest: &[String]) -> Result<StoreOpts, String> {
    let mut dir = None;
    let mut snapshot_every = None;
    let mut clients = None;
    let mut group_commit_window_us = None;
    let mut stats_every = None;
    let mut slow_op_us = None;
    let mut listen = None;
    let mut peers = Vec::new();
    let mut origin = None;
    let mut origins = None;
    let mut sync_interval_ms = None;
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut numeric = |flag: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{flag} needs an unsigned integer"))
        };
        match a.as_str() {
            "--data-dir" => {
                dir = Some(
                    it.next()
                        .ok_or_else(|| "--data-dir needs a path".to_string())?
                        .clone(),
                );
            }
            "--snapshot-every" => snapshot_every = Some(numeric("--snapshot-every")?),
            "--clients" => {
                let n = numeric("--clients")?;
                if n == 0 {
                    return Err("--clients needs at least 1".to_string());
                }
                clients = Some(n as usize);
            }
            "--group-commit-window" => {
                group_commit_window_us = Some(numeric("--group-commit-window")?);
            }
            "--stats-every" => {
                let n = numeric("--stats-every")?;
                if n == 0 {
                    return Err("--stats-every needs at least 1".to_string());
                }
                stats_every = Some(n);
            }
            "--slow-op-us" => slow_op_us = Some(numeric("--slow-op-us")?),
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or_else(|| "--listen needs an address".to_string())?
                        .clone(),
                );
            }
            "--peer" => {
                peers.push(
                    it.next()
                        .ok_or_else(|| "--peer needs an address".to_string())?
                        .clone(),
                );
            }
            "--origin" => origin = Some(numeric("--origin")? as usize),
            "--origins" => {
                let n = numeric("--origins")?;
                if n < 2 {
                    return Err("--origins needs a group of at least 2".to_string());
                }
                origins = Some(n as usize);
            }
            "--sync-interval-ms" => sync_interval_ms = Some(numeric("--sync-interval-ms")?),
            _ => out.push(a.clone()),
        }
    }
    let peer_mode = listen.is_some() || !peers.is_empty();
    if peer_mode && (origin.is_none() || origins.is_none()) {
        return Err("--listen/--peer need --origin N and --origins N".to_string());
    }
    if !peer_mode && (origin.is_some() || origins.is_some() || sync_interval_ms.is_some()) {
        return Err("--origin/--origins/--sync-interval-ms only apply with --listen/--peer".to_string());
    }
    if let (Some(o), Some(n)) = (origin, origins) {
        if o >= n {
            return Err(format!("--origin {o} is outside the group 0..{n}"));
        }
    }
    Ok(StoreOpts {
        dir: dir.ok_or_else(|| "--data-dir is required".to_string())?,
        snapshot_every,
        clients,
        group_commit_window_us,
        stats_every,
        slow_op_us,
        listen,
        peers,
        origin,
        origins,
        sync_interval_ms,
        rest: out,
    })
}

/// Renders the recovery stats line shared by `serve` and `recover`.
fn report_recovery(dir: &str, rec: &store::Recovered) {
    let s = &rec.stats;
    let torn = if s.torn_bytes > 0 {
        format!(", {} torn byte(s) truncated", s.torn_bytes)
    } else {
        String::new()
    };
    println!(
        "recovered {dir} at epoch {}: {} snapshot tuple(s) + {} WAL record(s) ({} replayed, {} aborted, {} re-rejected{torn})",
        s.epoch, s.snapshot_tuples, s.wal_records, s.replayed, s.aborted, s.rejected
    );
    println!(
        "state: {} tuple(s), {}",
        rec.state.total_tuples(),
        if rec.consistent {
            "consistent"
        } else {
            "inconsistent"
        }
    );
}

/// `idr recover --data-dir DIR [<ATTR>...]`: replays snapshot + WAL
/// through the guarded engine, reports what recovery found and the
/// re-earned consistency verdict; trailing attribute names run one
/// X-total projection against the recovered state.
fn recover_cmd(rest: &[String], budget: Budget, obs: &Observability, parallel: bool) -> ExitCode {
    let opts = match parse_store_flags(rest) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    if opts.snapshot_every.is_some()
        || opts.clients.is_some()
        || opts.group_commit_window_us.is_some()
        || opts.stats_every.is_some()
        || opts.slow_op_us.is_some()
        || opts.listen.is_some()
        || !opts.peers.is_empty()
    {
        return usage(
            "--snapshot-every/--clients/--group-commit-window/--stats-every/--slow-op-us/--listen/--peer only apply to idr serve",
        );
    }
    let rec = match store::recover_with(
        Path::new(&opts.dir),
        obs.tracer.clone(),
        obs.metrics.clone(),
    ) {
        Ok(r) => r,
        Err(e) => return fail(store_exit(&e), &format!("{e}")),
    };
    report_recovery(&opts.dir, &rec);
    if !opts.rest.is_empty() {
        let engine = Engine::new(rec.store.scheme().clone())
            .with_parallel(parallel)
            .with_observability(obs.clone());
        let x = match parse_attrs(&engine, &opts.rest) {
            Ok(x) => x,
            Err(e) => return fail(EXIT_PARSE, &e),
        };
        let guard = Guard::new(budget);
        let u = engine.scheme().universe();
        match engine.total_projection(&rec.state, x, &guard) {
            Ok(Some(tuples)) => {
                let symbols = rec.store.symbols();
                let sym = symbols.lock().unwrap_or_else(|p| p.into_inner());
                println!("[{}]: {} tuple(s)", u.render(x), tuples.len());
                for t in &tuples {
                    println!("  {}", t.render(u, &sym));
                }
            }
            Ok(None) => return fail(EXIT_INCONSISTENT, "state is inconsistent"),
            Err(e) => return fail(exec_exit(&e), &format!("{e}")),
        }
    }
    if rec.consistent {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_INCONSISTENT)
    }
}

/// A mutation dispatched to a serve worker lane.
enum ServeJob {
    /// One insert or delete: the op number, whether it is an insert, and
    /// the parsed target.
    One {
        op: usize,
        insert: bool,
        rel: usize,
        t: Tuple,
        /// The op's pipeline timeline; `enqueue` is stamped at dispatch.
        tl: Arc<obs::OpTimeline>,
    },
    /// A `begin`/`commit` framed op group, applied as one unit (one WAL
    /// batch, one fsync) under the `commit` line's op number.
    Batch {
        op: usize,
        ops: Vec<BatchOp>,
        tl: Arc<obs::OpTimeline>,
    },
}

/// One tagged response line bundle: the op number, the rendered body
/// (may be multi-line), and the exit code if the op failed fatally.
type ServeResponse = (usize, String, Option<u8>);

/// The live stats surface behind `.stats` and `--stats-every`: the
/// serve registry plus the windowed throughput rate. The printer thread
/// records completions; the dispatcher renders on demand. Reads go
/// through `MetricsRegistry::snapshot`, whose lock spans are bounded to
/// Arc clones — writer lanes only ever touch pre-resolved atomics.
struct ServeStats {
    registry: Arc<MetricsRegistry>,
    start: std::time::Instant,
    rate: std::sync::Mutex<obs::WindowedRate>,
    /// Ops dispatched to a lane but not yet completed.
    queue_depth: Arc<obs::Gauge>,
}

impl ServeStats {
    fn new(registry: Arc<MetricsRegistry>) -> ServeStats {
        ServeStats {
            queue_depth: registry.gauge("serve.queue_depth"),
            registry,
            start: std::time::Instant::now(),
            // Trailing 1s window in 100ms slots: responsive without
            // jitter from single slow batches.
            rate: std::sync::Mutex::new(obs::WindowedRate::new(1_000_000, 10)),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Called by the printer per completed response.
    fn note_done(&self) {
        let now = self.now_us();
        self.rate
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .record(now, 1);
    }

    fn rate_per_sec(&self) -> f64 {
        let now = self.now_us();
        self.rate
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .per_sec(now)
    }

    /// The periodic one-line summary (`--stats-every`).
    fn render_line(&self, done: u64) -> String {
        let snap = self.registry.snapshot();
        let gauge = |n: &str| lookup_gauge(&snap, n);
        format!(
            "[stats] ops={done} rate={:.1}/s queue={} epoch={} lag={} insert_us={} fsync_us={} batch_mean={:.1} lanes=[{}]",
            self.rate_per_sec(),
            gauge("serve.queue_depth"),
            gauge("hub.epoch"),
            gauge("hub.epoch_lag"),
            render_pctls(lookup_hist(&snap, "session.insert_us")),
            render_pctls(lookup_hist(&snap, "store.fsync_us")),
            lookup_hist(&snap, "store.batch_size").map_or(0.0, |h| h.mean()),
            lane_counts(&snap, "hub.lane_ops")
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// The full `.stats` breakdown (multi-line).
    fn render_full(&self, dispatched: usize, clients: usize) -> String {
        let snap = self.registry.snapshot();
        let gauge = |n: &str| lookup_gauge(&snap, n);
        let mut body = format!(
            "server stats: {dispatched} op(s) dispatched over {clients} client lane(s), {:.1} op/s (trailing 1s)\nqueue depth {}, read epoch {} (lag {} op(s) unpublished)",
            self.rate_per_sec(),
            gauge("serve.queue_depth"),
            gauge("hub.epoch"),
            gauge("hub.epoch_lag"),
        );
        body.push_str("\npipeline phase latencies (us):");
        for p in obs::Phase::ALL {
            let h = lookup_hist(&snap, &format!("pipeline.us{{phase={}}}", p.as_str()));
            if h.is_some_and(|h| h.count > 0) {
                body.push_str(&format!(
                    "\n  {:<12} {}",
                    p.as_str(),
                    render_pctls(h)
                ));
            }
        }
        let batches = lookup_hist(&snap, "store.batch_size");
        body.push_str(&format!(
            "\ngroup commit: {} batch(es), mean size {:.1}, batch {}, fsync_us {}",
            batches.map_or(0, |h| h.count),
            batches.map_or(0.0, |h| h.mean()),
            render_pctls(batches),
            render_pctls(lookup_hist(&snap, "store.fsync_us")),
        ));
        let ops = lane_counts(&snap, "hub.lane_ops");
        let busy = lane_counts(&snap, "hub.lane_busy_us");
        let elapsed = self.now_us().max(1);
        body.push_str("\nlanes:");
        for (b, n) in ops.iter().enumerate() {
            let pct = busy.get(b).map_or(0.0, |&u| u as f64 * 100.0 / elapsed as f64);
            body.push_str(&format!("\n  block {b}: {n} op(s), {pct:.1}% busy"));
        }
        body
    }
}

fn lookup_gauge(snap: &obs::MetricsSnapshot, name: &str) -> u64 {
    snap.gauges
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn lookup_hist<'a>(
    snap: &'a obs::MetricsSnapshot,
    name: &str,
) -> Option<&'a obs::HistogramSnapshot> {
    snap.histograms.iter().find(|h| h.name == name)
}

/// Values of `prefix{block=0..}` counters in block order.
fn lane_counts(snap: &obs::MetricsSnapshot, prefix: &str) -> Vec<u64> {
    let mut out: Vec<(usize, u64)> = snap
        .counters
        .iter()
        .filter_map(|(n, v)| {
            let rest = n.strip_prefix(prefix)?.strip_prefix("{block=")?;
            rest.strip_suffix('}')?.parse().ok().map(|b: usize| (b, *v))
        })
        .collect();
    out.sort_unstable();
    out.into_iter().map(|(_, v)| v).collect()
}

/// `p50/p95/p99=a/b/c` from bucket-estimated percentiles; `-` when the
/// histogram is empty and `>10s` when a rank lands above the top bound.
fn render_pctls(h: Option<&obs::HistogramSnapshot>) -> String {
    let fmt = |v: Option<u64>| match v {
        None => "-".to_string(),
        Some(u64::MAX) => ">10s".to_string(),
        Some(v) => v.to_string(),
    };
    match h {
        Some(h) if h.count > 0 => format!(
            "p50/p95/p99={}/{}/{}",
            fmt(h.p50()),
            fmt(h.p95()),
            fmt(h.p99())
        ),
        _ => "p50/p95/p99=-".to_string(),
    }
}

/// The structured slow-op record (`--slow-op-us`): one JSON line on
/// stderr with the full per-phase breakdown, schema-checked by
/// `scripts/obs-schema.json` as the `slow_op` shape.
fn slow_op_json(verb: &str, op: usize, threshold_us: u64, tl: &obs::OpTimeline) -> String {
    use obs::Phase;
    let mut w = obs::json::JsonWriter::new();
    w.begin_object();
    w.key("type").string("slow_op");
    w.key("verb").string(verb);
    w.key("op").u64(op as u64);
    w.key("threshold_us").u64(threshold_us);
    w.key("total_us").u64(tl.total_us());
    for p in Phase::ALL {
        w.key(&format!("{}_us", p.as_str())).u64(tl.duration_of(p));
    }
    w.end_object();
    w.finish()
}

/// `idr serve --data-dir DIR --listen ADDR [--peer ADDR]... --origin K
/// --origins N`: the networked replication mode. The node is one
/// origin of an N-replica group; its per-origin journals live as
/// WAL-framed segments under `DIR/sync/` and survive restarts. A
/// listener thread answers anti-entropy exchanges from peers
/// (`respond_exchange`), and one thread per `--peer` address initiates
/// an exchange every `--sync-interval-ms` (default 200), reconnecting
/// under the global `--retries`/`--backoff-ms` policy. The wire
/// contract is specified in `docs/WIRE.md`.
///
/// Stdin drives the node: `insert R1: A=a B=b` / `delete …` journal a
/// client op at this origin (the verdict is provisional until the
/// group converges), `query A B` answers from the materialised state,
/// `.digest` prints the digest vector (byte-identical across
/// converged peers), `.state` prints the sorted state fixture lines,
/// `quit` or EOF shuts down. The bound listen address is written to
/// `DIR/listen.addr` so scripts can use `--listen 127.0.0.1:0`.
///
/// A handshake rejection from a peer — wrong protocol version, wrong
/// scheme digest, wrong group shape — is a configuration error, not a
/// transient fault: the process exits with [`EXIT_FAULT`].
fn peer_serve_cmd(
    opts: &StoreOpts,
    budget: Budget,
    obs: &Observability,
    retry: &RetryPolicy,
) -> ExitCode {
    use independence_reducible::sync::{
        connect_with_retry, initiate_exchange, respond_exchange, ExchangeFaults, Replica,
        WireError,
    };
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    let origin = opts.origin.expect("peer mode validated --origin");
    let origins = opts.origins.expect("peer mode validated --origins");
    let scheme_path = Path::new(&opts.dir).join("scheme.idr");
    let text = match std::fs::read_to_string(&scheme_path) {
        Ok(t) => t,
        Err(e) => {
            return fail(
                EXIT_PARSE,
                &format!("cannot read {} (run idr init first): {e}", scheme_path.display()),
            )
        }
    };
    let db = match parse_scheme(&text) {
        Ok(db) => db,
        Err(e) => return fail(EXIT_PARSE, &format!("{}: {e}", scheme_path.display())),
    };
    let guard = Guard::new(budget);
    let sync_dir = Path::new(&opts.dir).join("sync");
    let replica = match Replica::open_durable(origin, origins, &db, &sync_dir, true, &guard) {
        Ok(r) => r,
        Err(e) => return fail(exec_exit(&e), &format!("{e}")),
    };
    println!(
        "origin {origin}/{origins} recovered from {}: {} op(s) held, digest {}",
        sync_dir.display(),
        replica.ops_held(),
        replica.digest().render()
    );
    let engine = Engine::new(db.clone()).with_observability(obs.clone());
    let hello = independence_reducible::sync::Hello::new(origin, origins, &db);
    let replica = Mutex::new(replica);
    let timeout = Duration::from_secs(5);
    let interval = Duration::from_millis(opts.sync_interval_ms.unwrap_or(200));
    let shutdown = AtomicBool::new(false);
    // A fatal condition observed by a background thread: the worst exit
    // code plus its message, reported once the node drains.
    let fatal: Mutex<Option<(u8, String)>> = Mutex::new(None);
    let listener = match opts.listen.as_deref() {
        None => None,
        Some(addr) => match TcpListener::bind(addr) {
            Ok(l) => Some(l),
            Err(e) => return fail(EXIT_FAULT, &format!("cannot listen on {addr}: {e}")),
        },
    };
    if let Some(l) = &listener {
        let bound = match l.local_addr() {
            Ok(a) => a,
            Err(e) => return fail(EXIT_FAULT, &format!("listener has no local address: {e}")),
        };
        // The actual bound address (resolves `--listen 127.0.0.1:0`),
        // published for scripts that wire processes together.
        let addr_file = Path::new(&opts.dir).join("listen.addr");
        if let Err(e) = std::fs::write(&addr_file, format!("{bound}\n")) {
            return fail(EXIT_FAULT, &format!("cannot write {}: {e}", addr_file.display()));
        }
        println!("listening on {bound}");
        if let Err(e) = l.set_nonblocking(true) {
            return fail(EXIT_FAULT, &format!("listener set_nonblocking: {e}"));
        }
    }
    let _ = std::io::stdout().flush();
    // One bootstrap exchange per peer on the main thread: a handshake
    // rejection here (or later, in the periodic threads) is a
    // misconfigured group and must fail loudly, not spin.
    for addr in &opts.peers {
        let res = connect_with_retry(addr, timeout, retry.max_retries, retry.base_backoff)
            .and_then(|stream| {
                initiate_exchange(
                    stream,
                    &hello,
                    &replica,
                    &ExchangeFaults::none(),
                    timeout,
                    &guard,
                    &obs.tracer,
                )
            });
        match res {
            Ok(out) => {
                let r = replica.lock().unwrap_or_else(|p| p.into_inner());
                println!(
                    "peer {addr}: shipped {}, appended {}, digest {}",
                    out.shipped,
                    out.appended,
                    r.digest().render()
                );
            }
            Err(WireError::Handshake { detail }) => {
                return fail(EXIT_FAULT, &format!("peer {addr} rejected us: {detail}"));
            }
            Err(e) => eprintln!("peer {addr} unreachable, will keep trying: {e}"),
        }
    }
    let _ = std::io::stdout().flush();
    let sleep_watching = |total: Duration| {
        let mut left = total;
        while !shutdown.load(Ordering::Relaxed) && !left.is_zero() {
            let step = left.min(Duration::from_millis(25));
            std::thread::sleep(step);
            left -= step;
        }
    };
    std::thread::scope(|s| {
        if let Some(l) = &listener {
            let replica = &replica;
            let guard = &guard;
            let shutdown = &shutdown;
            let hello = &hello;
            let tracer = &obs.tracer;
            s.spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match l.accept() {
                        Ok((stream, from)) => {
                            // The listener polls, but each accepted
                            // exchange blocks with a read deadline.
                            let _ = stream.set_nonblocking(false);
                            match respond_exchange(
                                stream,
                                hello,
                                replica,
                                &ExchangeFaults::none(),
                                timeout,
                                guard,
                                tracer,
                            ) {
                                Ok(_) => {}
                                Err(e) => eprintln!("exchange from {from}: {e}"),
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(e) => {
                            eprintln!("accept: {e}");
                            std::thread::sleep(Duration::from_millis(100));
                        }
                    }
                }
            });
        }
        for addr in &opts.peers {
            let replica = &replica;
            let guard = &guard;
            let shutdown = &shutdown;
            let fatal = &fatal;
            let hello = &hello;
            let tracer = &obs.tracer;
            let sleep_watching = &sleep_watching;
            let metrics = obs.metrics.clone();
            // Ahead-of-peer op count, updated after every exchange from
            // the two digest vectors: how much this peer still lags us.
            let lag = metrics.as_ref().map(|m| {
                m.gauge(&format!(
                    "sync.peer_lag.{}",
                    addr.replace(|c: char| !c.is_ascii_alphanumeric(), "_")
                ))
            });
            s.spawn(move || loop {
                sleep_watching(interval);
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let res =
                    connect_with_retry(addr, timeout, retry.max_retries, retry.base_backoff)
                        .and_then(|stream| {
                            initiate_exchange(
                                stream,
                                hello,
                                replica,
                                &ExchangeFaults::none(),
                                timeout,
                                guard,
                                tracer,
                            )
                        });
                match res {
                    Ok(out) => {
                        if let (Some(lag), Some(theirs)) = (&lag, &out.peer_digest) {
                            let ours = {
                                let r = replica.lock().unwrap_or_else(|p| p.into_inner());
                                r.digest()
                            };
                            let behind: u64 = ours
                                .origins
                                .iter()
                                .zip(&theirs.origins)
                                .map(|(a, b)| a.len.saturating_sub(b.len))
                                .sum();
                            lag.set(behind);
                        }
                    }
                    Err(WireError::Handshake { detail }) => {
                        let mut f = fatal.lock().unwrap_or_else(|p| p.into_inner());
                        if f.is_none() {
                            *f = Some((
                                EXIT_FAULT,
                                format!("peer {addr} rejected us: {detail}"),
                            ));
                        }
                        shutdown.store(true, Ordering::Relaxed);
                        break;
                    }
                    Err(WireError::Exec(e)) => {
                        let mut f = fatal.lock().unwrap_or_else(|p| p.into_inner());
                        if f.is_none() {
                            *f = Some((exec_exit(&e), format!("exchange with {addr}: {e}")));
                        }
                        shutdown.store(true, Ordering::Relaxed);
                        break;
                    }
                    // Connection-level trouble is the network's
                    // business: anti-entropy retries forever.
                    Err(_) => {}
                }
            });
        }
        // Stdin drives the node from the main thread.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            let (verb, tail) = match line.split_once(char::is_whitespace) {
                Some((v, t)) => (v, t.trim()),
                None => (line, ""),
            };
            match verb {
                "quit" | "exit" => break,
                "insert" | "delete" => {
                    // Validate before journalling: a malformed line in a
                    // journal would replicate as divergence, not error.
                    let parsed = {
                        let mut scratch = SymbolTable::new();
                        parse_tuple_line(tail, &db, &mut scratch).map(|_| ())
                    };
                    match parsed {
                        Err(e) => println!("error: {e}"),
                        Ok(()) => {
                            let mut r = replica.lock().unwrap_or_else(|p| p.into_inner());
                            match r.client_op(line, &guard) {
                                Ok(()) => println!(
                                    "journalled at origin {origin}: {} op(s) held, digest {}",
                                    r.ops_held(),
                                    r.digest().render()
                                ),
                                Err(e) => println!("error: {e}"),
                            }
                        }
                    }
                }
                "query" => {
                    let attrs: Vec<String> =
                        tail.split_whitespace().map(str::to_string).collect();
                    match parse_attrs(&engine, &attrs) {
                        Err(e) => println!("error: {e}"),
                        Ok(x) => {
                            let r = replica.lock().unwrap_or_else(|p| p.into_inner());
                            match r.answer(x, &guard) {
                                Ok(Some(lines)) => {
                                    println!(
                                        "[{}]: {} tuple(s)",
                                        db.universe().render(x),
                                        lines.len()
                                    );
                                    for l in &lines {
                                        println!("  {l}");
                                    }
                                }
                                Ok(None) => println!("state is inconsistent"),
                                Err(e) => println!("error: {e}"),
                            }
                        }
                    }
                }
                ".digest" => {
                    let r = replica.lock().unwrap_or_else(|p| p.into_inner());
                    println!("digest {}", r.digest().render());
                }
                ".state" => {
                    let r = replica.lock().unwrap_or_else(|p| p.into_inner());
                    let lines = r.state_lines();
                    println!(
                        "state: {} tuple(s), {}",
                        lines.len(),
                        if r.is_consistent() { "consistent" } else { "inconsistent" }
                    );
                    for l in &lines {
                        println!("  {l}");
                    }
                }
                other => println!(
                    "error: unknown op {other:?} (insert/delete/query/.digest/.state/quit)"
                ),
            }
            let _ = std::io::stdout().flush();
        }
        shutdown.store(true, Ordering::Relaxed);
    });
    if let Some((code, msg)) = fatal.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return fail(code, &msg);
    }
    let r = replica.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(d) = r.diverged() {
        return fail(EXIT_DIVERGENCE, &format!("replica diverged: {d}"));
    }
    let consistent = r.is_consistent();
    println!(
        "served {} as origin {origin}/{origins}: {} op(s) held, digest {}, {}",
        opts.dir,
        r.ops_held(),
        r.digest().render(),
        if consistent { "consistent" } else { "inconsistent" }
    );
    if consistent {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_INCONSISTENT)
    }
}

/// `idr serve --data-dir DIR [--snapshot-every N] [--clients N]
/// [--group-commit-window US]`: recovers the data dir and serves ops
/// from stdin through `--clients` concurrent writer lanes over one
/// shared hub — every mutation is committed to the group-commit WAL
/// before it touches memory, so killing the process at any point loses
/// nothing acknowledged.
///
/// Ops: `insert R1: A=a B=b`, `delete R1: A=a B=b`, `query A B`,
/// `quit`. Blank lines and `#` comments are ignored; malformed lines
/// get a tagged `error:` response and the loop continues. Every
/// response line is prefixed `[op K]` with K the op's 1-based position
/// in the input, so interleaved lane output stays attributable.
/// Mutations round-robin across the lanes and may complete out of
/// order; queries run against an epoch-stamped [`ReadView`] snapshot
/// (they never block writers and report the epoch they read). `quit`
/// or EOF drains: queued mutations finish, then the summary prints.
fn serve_cmd(
    rest: &[String],
    budget: Budget,
    obs: &Observability,
    parallel: bool,
    retry: &RetryPolicy,
) -> ExitCode {
    use std::sync::mpsc;
    let opts = match parse_store_flags(rest) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    if let Some(extra) = opts.rest.first() {
        return usage(&format!("serve takes no positional argument {extra:?}"));
    }
    if opts.listen.is_some() || !opts.peers.is_empty() {
        if opts.snapshot_every.is_some()
            || opts.clients.is_some()
            || opts.group_commit_window_us.is_some()
            || opts.stats_every.is_some()
            || opts.slow_op_us.is_some()
        {
            return usage(
                "peer mode (--listen/--peer) replicates journals, not client lanes: --snapshot-every/--clients/--group-commit-window/--stats-every/--slow-op-us do not apply",
            );
        }
        return peer_serve_cmd(&opts, budget, obs, retry);
    }
    // Serve mode always runs with a registry: `.stats`, `--stats-every`
    // and `--slow-op-us` all read from it, and pre-resolved handles make
    // its hot-path cost a handful of relaxed atomics either way.
    let registry = obs
        .metrics
        .clone()
        .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
    let obs = {
        let mut o = obs.clone();
        o.metrics = Some(registry.clone());
        o
    };
    let obs = &obs;
    let rec = match store::recover_with(
        Path::new(&opts.dir),
        obs.tracer.clone(),
        obs.metrics.clone(),
    ) {
        Ok(r) => r,
        Err(e) => return fail(store_exit(&e), &format!("{e}")),
    };
    report_recovery(&opts.dir, &rec);
    let window = std::time::Duration::from_micros(opts.group_commit_window_us.unwrap_or(0));
    let shared = Arc::new(
        store::SharedStore::new(rec.store.with_snapshot_every(opts.snapshot_every))
            .with_group_window(window),
    );
    let symbols = shared.symbols();
    let db = shared.lock().scheme().clone();
    let engine = Engine::new(db.clone())
        .with_parallel(parallel)
        .with_observability(obs.clone());
    let guard = Guard::new(budget);
    let hub = match engine.hub_with(&rec.state, &guard, shared.clone()) {
        Ok(h) => h,
        Err(e) => return fail(exec_exit(&e), &format!("{e}")),
    };
    let clients = opts.clients.unwrap_or(1);
    let stats = Arc::new(ServeStats::new(registry.clone()));
    let stats_every = opts.stats_every;
    let slow_op_us = opts.slow_op_us;
    let mut ops = 0usize;
    let worst = std::thread::scope(|s| {
        let (res_tx, res_rx) = mpsc::channel::<ServeResponse>();
        // The printer serializes all lane output; it owns the worst
        // fatal exit code seen, the completion count, and (because it
        // already holds the output stream) the `--stats-every` cadence.
        let printer = {
            let stats = stats.clone();
            s.spawn(move || {
                let mut worst = 0u8;
                let mut done = 0u64;
                for (op, body, code) in res_rx {
                    for line in body.lines() {
                        println!("[op {op}] {line}");
                    }
                    done += 1;
                    stats.note_done();
                    if stats_every.is_some_and(|n| done.is_multiple_of(n)) {
                        println!("{}", stats.render_line(done));
                    }
                    let _ = std::io::stdout().flush();
                    worst = worst.max(code.unwrap_or(0));
                }
                worst
            })
        };
        let lanes: Vec<mpsc::Sender<ServeJob>> = (0..clients)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<ServeJob>();
                let writer = hub.write_handle();
                let res = res_tx.clone();
                let guard = &guard;
                let stats = stats.clone();
                let tracer = obs.tracer.clone();
                s.spawn(move || {
                    for job in rx {
                        let (op, verb, tl, body, code) = match job {
                            ServeJob::One { op, insert, rel, t, tl } => {
                                let verb = if insert { "insert" } else { "delete" };
                                let (body, code) = if insert {
                                    match writer.insert_timed(rel, t, guard, &tl) {
                                        Ok(true) => ("accepted".to_string(), None),
                                        Ok(false) => {
                                            ("rejected (state unchanged)".to_string(), None)
                                        }
                                        Err(e) => (format!("error: {e}"), Some(exec_exit(&e))),
                                    }
                                } else {
                                    match writer.delete_timed(rel, &t, guard, &tl) {
                                        Ok(true) => ("removed".to_string(), None),
                                        Ok(false) => ("absent (state unchanged)".to_string(), None),
                                        Err(e) => (format!("error: {e}"), Some(exec_exit(&e))),
                                    }
                                };
                                (op, verb, tl, body, code)
                            }
                            ServeJob::Batch { op, ops: group, tl } => {
                                let (body, code) =
                                    match writer.apply_batch_timed(&group, guard, &tl) {
                                        Ok(verdicts) => {
                                            let applied =
                                                verdicts.iter().filter(|&&v| v).count();
                                            let mut body = format!(
                                                "committed {} op(s), {} applied",
                                                group.len(),
                                                applied
                                            );
                                            for (j, (o, v)) in
                                                group.iter().zip(&verdicts).enumerate()
                                            {
                                                let verdict = match (o, v) {
                                                    (BatchOp::Insert { .. }, true) => "accepted",
                                                    (BatchOp::Insert { .. }, false) => "rejected",
                                                    (BatchOp::Delete { .. }, true) => "removed",
                                                    (BatchOp::Delete { .. }, false) => "absent",
                                                };
                                                body.push_str(&format!("\n  [{j}] {verdict}"));
                                            }
                                            (body, None)
                                        }
                                        Err(e) => (
                                            format!(
                                                "error: batch rolled back, nothing applied: {e}"
                                            ),
                                            Some(exec_exit(&e)),
                                        ),
                                    };
                                (op, "batch", tl, body, code)
                            }
                        };
                        stats.queue_depth.sub(1);
                        tracer.emit_with(|| tl.to_event(Arc::from(verb), op as u64));
                        if let Some(th) = slow_op_us {
                            if tl.total_us() >= th {
                                eprintln!("{}", slow_op_json(verb, op, th, &tl));
                            }
                        }
                        if res.send((op, body, code)).is_err() {
                            break;
                        }
                    }
                });
                tx
            })
            .collect();
        let stdin = std::io::stdin();
        // `begin` opens a framed op group: mutations buffer here until
        // `commit` dispatches them as one batch job (reads run
        // immediately — they never join a group).
        let mut pending_batch: Option<Vec<BatchOp>> = None;
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    let _ = res_tx.send((ops, format!("error: stdin: {e}"), Some(EXIT_FAULT)));
                    break;
                }
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (verb, tail) = match line.split_once(char::is_whitespace) {
                Some((v, t)) => (v, t.trim()),
                None => (line, ""),
            };
            if matches!(verb, "quit" | "exit") {
                if pending_batch.take().is_some() {
                    let _ = res_tx.send((
                        ops,
                        "error: open batch discarded (quit before commit)".to_string(),
                        None,
                    ));
                }
                break;
            }
            ops += 1;
            let op = ops;
            match verb {
                "insert" | "delete" => {
                    // Intern under the store's canonical symbol table —
                    // and release the lock before dispatch, because
                    // logging the op re-locks it to render the WAL
                    // payload.
                    let parsed = {
                        let mut sym = symbols.lock().unwrap_or_else(|p| p.into_inner());
                        parse_tuple_line(tail, &db, &mut sym)
                    };
                    match parsed {
                        Ok((rel, t)) => {
                            if let Some(batch) = &mut pending_batch {
                                batch.push(if verb == "insert" {
                                    BatchOp::Insert { rel, t }
                                } else {
                                    BatchOp::Delete { rel, t }
                                });
                                continue;
                            }
                            let tl = Arc::new(obs::OpTimeline::new());
                            tl.stamp(obs::Phase::Enqueue);
                            stats.queue_depth.add(1);
                            let job = ServeJob::One {
                                op,
                                insert: verb == "insert",
                                rel,
                                t,
                                tl,
                            };
                            let _ = lanes[(op - 1) % clients].send(job);
                        }
                        Err(e) => {
                            let _ = res_tx.send((op, format!("error: {e}"), None));
                        }
                    }
                }
                "begin" => {
                    let body = if pending_batch.is_some() {
                        "error: batch already begun (commit it first)"
                    } else {
                        pending_batch = Some(Vec::new());
                        "batch begun"
                    };
                    let _ = res_tx.send((op, body.to_string(), None));
                }
                "commit" => match pending_batch.take() {
                    None => {
                        let _ = res_tx.send((op, "error: no batch begun".to_string(), None));
                    }
                    Some(group) => {
                        let tl = Arc::new(obs::OpTimeline::new());
                        tl.stamp(obs::Phase::Enqueue);
                        stats.queue_depth.add(1);
                        let job = ServeJob::Batch { op, ops: group, tl };
                        let _ = lanes[(op - 1) % clients].send(job);
                    }
                },
                "query" => {
                    let attrs: Vec<String> =
                        tail.split_whitespace().map(str::to_string).collect();
                    let body = serve_query(&hub, &engine, &attrs, &symbols, &guard);
                    let _ = res_tx.send((op, body.0, body.1));
                }
                ".stats" => {
                    let _ = res_tx.send((op, stats.render_full(ops, clients), None));
                }
                other => {
                    let _ = res_tx.send((
                        op,
                        format!(
                            "error: unknown op {other:?} (insert/delete/begin/commit/query/.stats/quit)"
                        ),
                        None,
                    ));
                }
            }
        }
        // Graceful drain: close the lanes so queued mutations finish,
        // then close the response channel so the printer flushes.
        drop(lanes);
        drop(res_tx);
        printer.join().unwrap_or(EXIT_FAULT)
    });
    let consistent = hub.is_consistent();
    let epoch_now = hub.read_view().epoch();
    let (epoch, records) = {
        let st = shared.lock();
        (st.epoch(), st.wal_records())
    };
    let gw = shared.group_wal();
    println!(
        "served {}: {} op(s) over {} client lane(s), final state {} at read epoch {}, store epoch {}, {} WAL record(s), {} group batch(es), {} fsync(s)",
        opts.dir,
        ops,
        clients,
        if consistent { "consistent" } else { "inconsistent" },
        epoch_now,
        epoch,
        records,
        gw.batches(),
        gw.fsyncs()
    );
    if worst != 0 {
        ExitCode::from(worst)
    } else if consistent {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_INCONSISTENT)
    }
}

/// Runs one `query A B` op against a fresh epoch-stamped snapshot and
/// renders the tagged response body (never blocks the writer lanes).
fn serve_query(
    hub: &Hub<'_>,
    engine: &Engine,
    attrs: &[String],
    symbols: &Arc<std::sync::Mutex<SymbolTable>>,
    guard: &Guard,
) -> (String, Option<u8>) {
    if attrs.is_empty() {
        return ("error: query needs at least one attribute".to_string(), None);
    }
    let x = match parse_attrs(engine, attrs) {
        Ok(x) => x,
        Err(e) => return (format!("error: {e}"), None),
    };
    let view = hub.read_view();
    let u = engine.scheme().universe();
    match view.total_projection(x, guard) {
        Ok(Some(tuples)) => {
            let sym = symbols.lock().unwrap_or_else(|p| p.into_inner());
            let mut body = format!(
                "[{}]: {} tuple(s) @epoch {}",
                u.render(x),
                tuples.len(),
                view.epoch()
            );
            for t in &tuples {
                body.push_str(&format!("\n  {}", t.render(u, &sym)));
            }
            (body, None)
        }
        Ok(None) => (
            format!("state is inconsistent @epoch {}", view.epoch()),
            None,
        ),
        Err(e) => (format!("error: {e}"), Some(exec_exit(&e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = "
# Example 1 of the paper
universe: C T H R S G
scheme R1: H R C  keys H R
scheme R2: H T R  keys H T | H R
scheme R3: H T C  keys H T
scheme R4: C S G  keys C S
scheme R5: H S R  keys H S
";

    #[test]
    fn parsed_example1_is_independence_reducible() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        let engine = Engine::new(db);
        assert!(engine.is_independence_reducible());
    }

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn budget_flags_are_stripped_anywhere() {
        let opts =
            parse_flags(&strs(&["project", "--max-steps", "7", "f", "A", "--timeout-ms", "50"]))
                .unwrap();
        assert_eq!(opts.args, strs(&["project", "f", "A"]));
        assert!(opts.parallel);
        assert_eq!(opts.budget.max_chase_steps, Some(7));
        assert_eq!(opts.budget.max_lookups, Some(7));
        assert_eq!(opts.budget.max_enumeration, Some(7));
        assert_eq!(opts.budget.timeout, Some(std::time::Duration::from_millis(50)));
        assert_eq!(opts.trace, None);
        assert_eq!(opts.metrics, None);
    }

    #[test]
    fn serial_flag_disables_parallelism() {
        let opts = parse_flags(&strs(&["chase", "f", "s", "--serial"])).unwrap();
        assert_eq!(opts.args, strs(&["chase", "f", "s"]));
        assert!(!opts.parallel);
    }

    #[test]
    fn budget_flags_reject_garbage() {
        assert!(parse_flags(&strs(&["--max-steps"])).is_err());
        assert!(parse_flags(&strs(&["--timeout-ms", "soon"])).is_err());
    }

    #[test]
    fn trace_and_metrics_flags_parse() {
        let opts =
            parse_flags(&strs(&["chase", "--trace", "f", "s", "--metrics", "m.json"])).unwrap();
        assert_eq!(opts.args, strs(&["chase", "f", "s"]));
        assert_eq!(opts.trace, Some(TraceFormat::Text));
        assert_eq!(opts.metrics.as_deref(), Some("m.json"));
        let opts = parse_flags(&strs(&["query", "--trace=json", "f", "s", "A"])).unwrap();
        assert_eq!(opts.trace, Some(TraceFormat::Json));
        assert_eq!(
            parse_flags(&strs(&["--trace=text", "x"])).unwrap().trace,
            Some(TraceFormat::Text)
        );
        assert!(parse_flags(&strs(&["--trace=xml"])).is_err());
        assert!(parse_flags(&strs(&["--metrics"])).is_err());
    }

    #[test]
    fn tuple_lines_parse_standalone() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        let mut sym = SymbolTable::new();
        let (i, t) = parse_tuple_line("R4: C=c1 S=s1 G=g1", &db, &mut sym).unwrap();
        assert_eq!(i, 3);
        assert_eq!(t.attrs(), db.scheme(3).attrs());
        assert!(parse_tuple_line("R4: C=c1", &db, &mut sym).is_err());
    }

    #[test]
    fn fuzz_flags_parse() {
        let opts = parse_fuzz_flags(&strs(&["--seed", "7", "--cases", "250", "--shrink"])).unwrap();
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.cases, 250);
        assert!(opts.shrink);
        assert_eq!(opts.out, "target/fuzz-failures");
        assert_eq!(opts.replay, None);
        let opts = parse_fuzz_flags(&strs(&["--replay", "case.txt", "--out", "d"])).unwrap();
        assert_eq!(opts.replay.as_deref(), Some("case.txt"));
        assert_eq!(opts.out, "d");
        let opts = parse_fuzz_flags(&strs(&["--concurrent", "--cases", "8"])).unwrap();
        assert!(opts.concurrent && !opts.crash);
        assert_eq!(opts.cases, 8);

        let opts = parse_fuzz_flags(&strs(&["--crash", "--concurrent"])).unwrap();
        assert!(opts.concurrent && opts.crash);

        let opts = parse_fuzz_flags(&strs(&["--sync", "--seed", "9"])).unwrap();
        assert!(opts.sync);
        assert_eq!(opts.seed, 9);
        let opts = parse_fuzz_flags(&strs(&["--sync", "--wire", "--cases", "50"])).unwrap();
        assert!(opts.sync && opts.wire);
        assert_eq!(opts.cases, 50);
        assert!(parse_fuzz_flags(&strs(&["--seed"])).is_err());
        assert!(parse_fuzz_flags(&strs(&["--cases", "many"])).is_err());
        assert!(parse_fuzz_flags(&strs(&["--frobnicate"])).is_err());
    }

    #[test]
    fn peer_serve_flags_parse() {
        let opts = parse_store_flags(&strs(&[
            "--data-dir",
            "d",
            "--listen",
            "127.0.0.1:0",
            "--peer",
            "127.0.0.1:4001",
            "--peer",
            "127.0.0.1:4002",
            "--origin",
            "0",
            "--origins",
            "3",
            "--sync-interval-ms",
            "50",
        ]))
        .unwrap();
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.peers, strs(&["127.0.0.1:4001", "127.0.0.1:4002"]));
        assert_eq!(opts.origin, Some(0));
        assert_eq!(opts.origins, Some(3));
        assert_eq!(opts.sync_interval_ms, Some(50));
        // Peer mode needs the group shape...
        assert!(parse_store_flags(&strs(&["--data-dir", "d", "--listen", ":0"])).is_err());
        // ...the origin must be inside it...
        assert!(parse_store_flags(&strs(&[
            "--data-dir", "d", "--listen", ":0", "--origin", "2", "--origins", "2",
        ]))
        .is_err());
        // ...a group of one replicates nothing...
        assert!(parse_store_flags(&strs(&[
            "--data-dir", "d", "--listen", ":0", "--origin", "0", "--origins", "1",
        ]))
        .is_err());
        // ...and the group flags are meaningless outside peer mode.
        assert!(parse_store_flags(&strs(&["--data-dir", "d", "--origin", "0"])).is_err());
        assert!(parse_store_flags(&strs(&["--data-dir", "d", "--sync-interval-ms", "50"])).is_err());
    }

    #[test]
    fn retry_flags_build_the_maintenance_policy() {
        let opts = parse_flags(&strs(&["maintain", "--retries", "3", "--backoff-ms", "10", "f"]))
            .unwrap();
        assert_eq!(opts.args, strs(&["maintain", "f"]));
        assert_eq!(opts.retry.max_retries, 3);
        assert_eq!(
            opts.retry.base_backoff,
            std::time::Duration::from_millis(10)
        );
        // Default: no retries, no backoff — the pre-flag behaviour.
        let opts = parse_flags(&strs(&["maintain", "f"])).unwrap();
        assert_eq!(opts.retry.max_retries, 0);
        assert_eq!(opts.retry.base_backoff, std::time::Duration::ZERO);
        assert!(parse_flags(&strs(&["--retries"])).is_err());
        assert!(parse_flags(&strs(&["--retries", "soon"])).is_err());
        // Backoff without retries would silently do nothing — reject it.
        assert!(parse_flags(&strs(&["--backoff-ms", "10"])).is_err());
    }

    #[test]
    fn serve_stats_flags_parse() {
        let opts = parse_store_flags(&strs(&[
            "--data-dir",
            "d",
            "--stats-every",
            "25",
            "--slow-op-us",
            "1500",
        ]))
        .unwrap();
        assert_eq!(opts.stats_every, Some(25));
        assert_eq!(opts.slow_op_us, Some(1500));
        // Defaults: both surfaces off.
        let opts = parse_store_flags(&strs(&["--data-dir", "d"])).unwrap();
        assert_eq!(opts.stats_every, None);
        assert_eq!(opts.slow_op_us, None);
        // `--slow-op-us 0` journals every op (handy for schema checks);
        // `--stats-every 0` would never fire and is rejected instead.
        assert_eq!(
            parse_store_flags(&strs(&["--data-dir", "d", "--slow-op-us", "0"]))
                .unwrap()
                .slow_op_us,
            Some(0)
        );
        assert!(parse_store_flags(&strs(&["--data-dir", "d", "--stats-every", "0"])).is_err());
        assert!(parse_store_flags(&strs(&["--data-dir", "d", "--stats-every"])).is_err());
        assert!(parse_store_flags(&strs(&["--data-dir", "d", "--slow-op-us", "x"])).is_err());
    }

    /// The slow-op journal record is consumed by scripts: pin its shape
    /// (field order and the `_us` suffix per phase) so
    /// `scripts/obs-schema.json` and the record never drift apart.
    #[test]
    fn slow_op_record_shape_is_pinned() {
        let tl = obs::OpTimeline::new();
        tl.record(obs::Phase::Enqueue, 0);
        tl.record(obs::Phase::LaneAcquire, 40);
        tl.record(obs::Phase::WalAppend, 55);
        tl.record(obs::Phase::BatchWait, 900);
        tl.record(obs::Phase::Fsync, 1200);
        tl.record(obs::Phase::Apply, 1250);
        tl.record(obs::Phase::Publish, 1260);
        assert_eq!(
            slow_op_json("insert", 7, 1000, &tl),
            "{\"type\":\"slow_op\",\"verb\":\"insert\",\"op\":7,\"threshold_us\":1000,\
             \"total_us\":1260,\"enqueue_us\":0,\"lane_acquire_us\":40,\"wal_append_us\":15,\
             \"batch_wait_us\":845,\"fsync_us\":300,\"apply_us\":50,\"publish_us\":10}"
        );
    }

    /// Satellite contract: every [`store::StoreError`] variant maps to
    /// exit 7 through the CLI (both directly and via the engine's fault
    /// taxonomy), and its rendering is pinned so scripts can match on
    /// stderr.
    #[test]
    fn every_store_error_variant_exits_fault_with_a_stable_rendering() {
        use independence_reducible::store::StoreError;
        use std::path::PathBuf;
        let table = [
            (
                StoreError::Io {
                    operation: "append wal record".to_string(),
                    path: PathBuf::from("/data/wal-0.log"),
                    message: "disk full".to_string(),
                },
                "io error during append wal record on /data/wal-0.log: disk full",
            ),
            (
                StoreError::Corrupt {
                    path: PathBuf::from("/data/wal-0.log"),
                    offset: 16,
                    detail: "stored crc 1 != computed 2".to_string(),
                },
                "corrupt wal record in /data/wal-0.log at offset 16: stored crc 1 != computed 2",
            ),
            (
                StoreError::Format {
                    path: PathBuf::from("/data/scheme.txt"),
                    detail: "unknown attribute \"Z\"".to_string(),
                },
                "malformed store file /data/scheme.txt: unknown attribute \"Z\"",
            ),
            (
                StoreError::Replay {
                    detail: "bad wal record".to_string(),
                },
                "wal replay failed: bad wal record",
            ),
        ];
        for (e, rendered) in table {
            assert_eq!(e.to_string(), rendered);
            assert_eq!(store_exit(&e), EXIT_FAULT);
            // A store error that crosses into the engine keeps exit 7.
            assert_eq!(exec_exit(&ExecError::from(e)), EXIT_FAULT);
        }
    }

    #[test]
    fn exec_errors_map_to_distinct_exit_codes() {
        use independence_reducible::exec::Resource;
        let codes = [
            exec_exit(&ExecError::BudgetExceeded {
                resource: Resource::ChaseSteps,
                limit: 1,
                spent: 2,
            }),
            exec_exit(&ExecError::TimedOut {
                elapsed_ms: 2,
                limit_ms: 1,
            }),
            exec_exit(&ExecError::Cancelled),
        ];
        assert_eq!(codes, [EXIT_BUDGET, EXIT_TIMEOUT, EXIT_FAULT]);
    }

    #[test]
    fn chase_and_query_agree_with_the_oracle() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        let mut sym = SymbolTable::new();
        let state = parse_state(
            "R1: H=h1 R=r1 C=c1\nR2: H=h1 T=t1 R=r1\nR3: H=h1 T=t1 C=c1\n",
            &db,
            &mut sym,
        )
        .unwrap();
        let engine = Engine::new(db.clone());
        let g = Guard::unlimited();
        let kd = KeyDeps::of(&db);
        assert_eq!(
            engine.is_consistent(&state, &g).unwrap(),
            is_consistent(&db, &state, kd.full(), &g).unwrap()
        );
        let x = db.universe().set_of("HC");
        assert_eq!(
            engine.total_projection(&state, x, &g).unwrap(),
            total_projection(&db, &state, kd.full(), x, &g).unwrap()
        );
    }
}
