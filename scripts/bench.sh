#!/usr/bin/env bash
# Seeded offline smoke benchmark (no criterion, no network): builds the
# tier-1-safe `bench` package, runs it on the synthetic block-chain
# families, writes the output JSON (default BENCH_pr7.json, override with
# the first argument), and asserts:
#
#   * the PR 2 headline — the indexed incremental engine beats the naive
#     whole-state chase on the largest family, full chase and insert
#     stream alike;
#   * the PR 3 headline — the dormant (no-op-tracer) instrumentation
#     costs < 5% on the largest family against the checked-in
#     BENCH_pr2.json baseline (plus a small absolute epsilon so sub-ms
#     timer noise cannot fail the build);
#   * the PR 6 headline — three replicas running the largest family's
#     insert stream converge under all three fault plans (clean, lossy,
#     partition + crash), with deterministic rounds-to-convergence and
#     ops-shipped counts in the `sync` section;
#   * the PR 7 headline — the concurrent hub over the group-commit WAL
#     serves a fixed durable op budget faster with 4 clients than with 1
#     (clients ride shared commit barriers), and grouping cuts
#     fsyncs-per-op below the classic one-fsync-per-op discipline;
#   * the PR 9 headline — the chase_scale section carries absolute-ms
#     numbers for ≥10^6-tuple bulk streams, and the durable bulk load of
#     one million tuples through framed batch groups (one WAL batch, one
#     fsync per group) beats the per-op serving discipline (one fsync
#     per op) by ≥5x;
#   * the trajectory gate — the 4-client serving throughput of this
#     build must stay within a generous tolerance of the checked-in
#     BENCH_pr8.json, so neither the batch plumbing nor new
#     instrumentation can silently halve the serving path.
#
# The durable bulk-load section fsyncs one million per-op commits, so a
# full run takes a few minutes on ordinary disks.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr9.json}"

cargo build -p bench --release
./target/release/bench-smoke > "$OUT"
echo "wrote $(pwd)/$OUT"

OUT="$OUT" python3 - <<'EOF'
import json, os

with open(os.environ["OUT"]) as f:
    doc = json.load(f)

largest = doc["families"][-1]
full = largest["full_chase_ms"]
stream = largest["insert_stream_ms"]
print(f"largest family: {largest['name']} ({largest['tuples']} tuples)")
print(f"  full chase : naive {full['naive']:.3f} ms  vs  incremental {full['incremental']:.3f} ms")
print(f"  insert x{stream['inserts']}: naive re-chase {stream['naive_rechase']:.3f} ms  vs  "
      f"hub stream {stream['hub_stream']:.3f} ms  ({stream['speedup']:.1f}x)")

assert full["incremental"] < full["naive"], "incremental chase must beat the naive chase"
assert stream["hub_stream"] < stream["naive_rechase"], \
    "hub insert stream must beat re-chase-from-scratch"
print("OK: incremental engine beats the naive chase on the largest family")

for fam in doc["families"]:
    m = fam["metrics"]
    assert m["counters"]["session.builds"] >= 1, f"{fam['name']}: no session build metered"
    assert m["counters"]["chase.rule_applications"] >= 0
print("OK: every family carries a metrics snapshot")

oh = doc["trace_overhead"]
print(f"trace overhead on {oh['family']}: "
      f"incremental noop {oh['incremental_noop_ms']:.3f} ms, traced {oh['incremental_traced_ms']:.3f} ms; "
      f"stream noop {oh['stream_noop_ms']:.3f} ms, traced {oh['stream_traced_ms']:.3f} ms")

# Dormant-instrumentation regression gate: the no-op-tracer numbers of
# this build vs the PR 3 baseline (itself gated against PR 2). 5%
# relative, with 0.15 ms absolute slack for scheduler jitter on sub-ms
# medians — the replication layer must stay out of the single-node path.
#
# The baseline's milliseconds were recorded on a different day's machine
# conditions, so the budget is first corrected for environment drift
# using the fast whole-state chase as the same-run anchor: chase_fast is
# library code with no instrumentation sites, so its time moves with the
# machine but never with dormant-tracer cost. (Observed in practice: the
# uninstrumented incremental chase drifts ~10% between sessions while
# the noop/fast ratio stays flat.)
if os.path.exists("BENCH_pr3.json"):
    with open("BENCH_pr3.json") as f:
        base = json.load(f)
    drift = (largest["full_chase_ms"]["fast"]
             / base["families"][-1]["full_chase_ms"]["fast"])
    base_noop = base["trace_overhead"]["incremental_noop_ms"]
    budget = base_noop * drift * 1.05 + 0.15
    got = oh["incremental_noop_ms"]
    assert got <= budget, \
        f"no-op tracer overhead: incremental {got:.3f} ms exceeds 5% over the " \
        f"drift-corrected PR3 baseline ({budget:.3f} ms = {base_noop:.3f} x {drift:.3f} x 1.05 + 0.15)"
    print(f"OK: no-op tracer within 5% of the PR3 baseline "
          f"({got:.3f} <= {budget:.3f} ms, drift x{drift:.3f})")
else:
    print("note: BENCH_pr3.json baseline missing; skipping the overhead gate")

# Replication section: three replicas, three adversaries, all converged
# (the binary asserts convergence itself; re-check and show the shape).
sync = doc["sync"]
assert len(sync["plans"]) == 3, "sync section must carry three fault plans"
for p in sync["plans"]:
    assert p["rounds_to_convergence"] > 0, f"{p['plan']}: no rounds recorded"
    assert p["ops_shipped"] > 0, f"{p['plan']}: nothing shipped"
    print(f"sync {p['plan']}: {p['rounds_to_convergence']} round(s), "
          f"{p['ops_shipped']} op(s) shipped, {p['messages_sent']} message(s), "
          f"{p['dropped']} dropped, {p['crashes']} crash(es)")
clean = sync["plans"][0]
faulty = sync["plans"][2]
assert faulty["rounds_to_convergence"] >= clean["rounds_to_convergence"], \
    "partition+crash should not converge faster than the clean network"
print("OK: replicas converge under clean, lossy and partition+crash plans")

# Serving section: the durable hub under 1/2/4/8 client threads, plus
# the group-commit fsync accounting. Commit latency (window + fsync)
# dominates per-op cost, so more clients per batch must mean more
# throughput — even on a single core.
serve = doc["serve"]
by_clients = {c["clients"]: c for c in serve["clients"]}
for c in serve["clients"]:
    print(f"serve {c['clients']} client(s): {c['inserts']} insert(s) + {c['queries']} quer(ies) "
          f"in {c['wall_ms']:.1f} ms = {c['ops_per_sec']:.0f} ops/s")
assert by_clients[4]["ops_per_sec"] > by_clients[1]["ops_per_sec"], \
    "4 concurrent clients must out-serve 1 (group commit amortises the barrier)"
print("OK: 4-client throughput beats 1-client on the durable serving path")

gc = {g["mode"]: g for g in serve["group_commit"]}
for mode in ("per_op", "grouped"):
    g = gc[mode]
    print(f"group_commit {mode}: {g['clients']} client(s), window {g['window_us']} us, "
          f"{g['fsyncs']} fsync(s) / {g['inserts']} op(s) = {g['fsyncs_per_op']:.3f} fsyncs/op")
assert gc["per_op"]["fsyncs_per_op"] >= 1.0, \
    "zero-window single-writer WAL must fsync every op"
assert gc["grouped"]["fsyncs_per_op"] < gc["per_op"]["fsyncs_per_op"], \
    "group commit must reduce fsyncs-per-op below the per-op discipline"
print("OK: group commit measurably reduces fsyncs-per-op")

# Absolute-throughput trajectory gate: 4-client serving ops/s against the
# PR 8 baseline. The tolerance is deliberately generous (half the
# baseline) — fsync-bound medians jitter hard on shared runners — but a
# hot-path regression from the batch plumbing (an accidental lock or
# clone per op, say) costs well over 2x and will trip it.
if os.path.exists("BENCH_pr8.json") and os.path.abspath("BENCH_pr8.json") != \
        os.path.abspath(os.environ["OUT"]):
    with open("BENCH_pr8.json") as f:
        base = json.load(f)
    base_rate = {c["clients"]: c["ops_per_sec"] for c in base["serve"]["clients"]}[4]
    got_rate = by_clients[4]["ops_per_sec"]
    floor = base_rate * 0.5
    assert got_rate >= floor, \
        f"serve trajectory: 4-client {got_rate:.0f} ops/s fell below half the " \
        f"PR8 baseline ({base_rate:.0f} ops/s)"
    print(f"OK: 4-client serve throughput {got_rate:.0f} ops/s holds the PR8 "
          f"trajectory (baseline {base_rate:.0f}, floor {floor:.0f})")
else:
    print("note: BENCH_pr8.json baseline missing; skipping the serve trajectory gate")

# Chase-scale section: honest absolute-ms numbers at 10^5-10^6 tuples.
# The gate is existence + sanity (a ≥10^6-tuple family with real
# timings); absolute wall-clock is machine-dependent, so no ms ceiling.
cs = doc["chase_scale"]
big = [f for f in cs["families"] if f["tuples"] >= 1_000_000]
assert big, "chase_scale must include a >=10^6-tuple family"
for f in cs["families"]:
    print(f"chase_scale {f['name']} x{f['tuples']}: gen {f['gen_ms']:.0f} ms, "
          f"hub per-op {f['hub_per_op_ms']:.0f} ms, hub batch {f['hub_batch_ms']:.0f} ms")
    assert f["hub_batch_ms"] > 0 and f["hub_per_op_ms"] > 0
print(f"OK: chase_scale carries {len(big)} family run(s) at >=10^6 tuples")

# Durable bulk-load headline: framed batch groups (one WAL batch + one
# fsync per group) vs the per-op serving discipline (one fsync per op)
# on a >=10^6-tuple family. This is the batch pipeline's reason to
# exist; gate it at 5x.
bl = doc["durable_bulk_load"]
print(f"durable_bulk_load {bl['family']} x{bl['tuples']} (groups of {bl['group_size']}): "
      f"per-op {bl['per_op_ms']:.0f} ms / {bl['per_op_fsyncs']} fsyncs  vs  "
      f"batch {bl['batch_ms']:.0f} ms / {bl['batch_fsyncs']} fsyncs  "
      f"= {bl['speedup']:.1f}x")
assert bl["tuples"] >= 1_000_000, "bulk-load headline must run at >=10^6 tuples"
assert bl["per_op_fsyncs"] >= bl["tuples"], \
    "per-op discipline must fsync every op"
assert bl["batch_fsyncs"] <= bl["tuples"] // bl["group_size"] + 1, \
    "batch groups must commit one fsync per group"
assert bl["speedup"] >= 5.0, \
    f"batch bulk load must beat the per-op loop by >=5x (got {bl['speedup']:.1f}x)"
print("OK: batched bulk load beats the per-op serving discipline by >=5x")
EOF
