#!/usr/bin/env bash
# Seeded offline smoke benchmark (no criterion, no network): builds the
# tier-1-safe `bench` package, runs it on the synthetic block-chain
# families, writes BENCH_pr2.json at the repo root, and asserts the
# headline claim of PR 2 — the indexed incremental engine beats the naive
# whole-state chase on the largest family, for both the full chase and the
# insert stream.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -p bench --release
./target/release/bench-smoke > BENCH_pr2.json
echo "wrote $(pwd)/BENCH_pr2.json"

python3 - <<'EOF'
import json

with open("BENCH_pr2.json") as f:
    doc = json.load(f)

largest = doc["families"][-1]
full = largest["full_chase_ms"]
stream = largest["insert_stream_ms"]
print(f"largest family: {largest['name']} ({largest['tuples']} tuples)")
print(f"  full chase : naive {full['naive']:.3f} ms  vs  incremental {full['incremental']:.3f} ms")
print(f"  insert x{stream['inserts']}: naive re-chase {stream['naive_rechase']:.3f} ms  vs  "
      f"engine session {stream['engine_session']:.3f} ms  ({stream['speedup']:.1f}x)")

assert full["incremental"] < full["naive"], "incremental chase must beat the naive chase"
assert stream["engine_session"] < stream["naive_rechase"], \
    "engine insert stream must beat re-chase-from-scratch"
print("OK: incremental engine beats the naive chase on the largest family")
EOF
