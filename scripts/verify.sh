#!/usr/bin/env bash
# Full offline verification: build, test, lint. The default workspace has
# zero registry dependencies, so this runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
