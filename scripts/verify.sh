#!/usr/bin/env bash
# Full offline verification: build, test, lint. The default workspace has
# zero registry dependencies, so this runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc gate: every public item is documented (the crates opt into
# missing_docs) and no broken intra-doc links.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Markdown doc gate: every intra-repo reference in the tracked docs —
# markdown links to .md files, and backticked repo paths — must resolve
# to a file that exists, so specs like docs/WIRE.md cannot silently
# drift away from the pages that cite them.
docs_ok=1
while read -r ref; do
  ref="${ref%%#*}"
  if [ ! -e "$ref" ]; then
    echo "broken doc reference: $ref" >&2
    docs_ok=0
  fi
done < <(
  {
    grep -ohE '\]\([A-Za-z0-9_./-]+\.md(#[A-Za-z0-9_-]+)?\)' \
      README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md |
      sed -E 's/^\]\(//; s/\)$//'
    grep -ohE '`(docs|examples|scripts|tests|src|crates)/[A-Za-z0-9_./-]+`' \
      README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md | tr -d '`'
  } | sort -u
)
[ "$docs_ok" = 1 ] || exit 1

# Bounded differential-fuzzing smoke run: 100 seed-deterministic cases
# replayed against four oracles in lockstep (parallel session, serial
# session, naive chase, Theorem 4.1 expressions). Exits 8 and writes
# repro fixtures to target/fuzz-failures on any divergence.
./target/release/idr fuzz --seed 42 --cases 100 --shrink

# Crash-point recovery fuzzing: 200 durable op streams, the WAL cut at
# every byte boundary, each cut recovered and diffed against a
# never-crashed oracle (tens of thousands of crash points). Exits 8 on
# any recovery divergence.
./target/release/idr fuzz --crash --seed 20260806 --cases 200

# Replication-convergence fuzzing: 200 random op streams partitioned
# across 2–4 simulated replicas under random fault plans (drop, delay,
# duplication, partition + heal, crash mid-sync). Every replica's
# converged state must match a never-partitioned baseline byte for byte;
# failures shrink to replayable scenario files. Exits 8 on any miss.
./target/release/idr fuzz --sync --seed 42 --cases 200

# Concurrent-serving fuzzing: 100 random op schedules run through the
# hub under racing client threads, the final state diffed against a
# serial replay of the committed WAL order (Thm 4.2: cross-block ops
# commute, so the two must agree byte for byte). Exits 8 on any miss.
./target/release/idr fuzz --concurrent --seed 42 --cases 100

# Mid-batch crash cuts on the group-commit WAL: concurrent durable
# streams, the log truncated inside coalesced batches, each cut
# recovered and checked against the committed-prefix oracle.
./target/release/idr fuzz --crash --concurrent --seed 20260806 --cases 100

# Batch-vs-serial equivalence fuzzing: framed op groups applied through
# apply_batch over a real durable store, diffed per-op against serial
# application (verdicts, state, consistency, probe answers), then the
# data dir recovered and diffed again. Exits 8 on any divergence.
./target/release/idr fuzz --batch --seed 42 --cases 50

# Wire-transport replication fuzzing (docs/WIRE.md): the same scripted
# fault plans replayed over real loopback sockets, each replica holding
# durable journal files on disk, diffed byte-for-byte against the
# never-partitioned baseline. Exits 8 on any miss.
./target/release/idr fuzz --sync --wire --seed 42 --cases 50

# The checked-in demo scenario must converge (and exercises the CLI
# round-trace path end to end) — on the simulator and over sockets.
./target/release/idr sync examples/scenarios/partition-heal.txt > /dev/null
./target/release/idr sync --wire examples/scenarios/partition-heal.txt > /dev/null

# Two-process loopback convergence smoke: two real `idr serve` peers on
# ephemeral ports (published via DIR/listen.addr), one client op each,
# a partition via SIGSTOP and a heal via SIGCONT, then byte-identical
# digests within a bounded wall time. Exit codes must be clean.
smoke="$(mktemp -d "${TMPDIR:-/tmp}/idr-wire-smoke.XXXXXX")"
pa='' pb=''
cleanup_smoke() {
  [ -n "$pb" ] && { kill -CONT "$pb" 2>/dev/null || true; }
  [ -n "$pa" ] && { kill "$pa" 2>/dev/null || true; }
  [ -n "$pb" ] && { kill "$pb" 2>/dev/null || true; }
  rm -rf "$smoke"
}
trap cleanup_smoke EXIT

./target/release/idr init "$smoke/a" examples/schemes/university.scm > /dev/null
./target/release/idr init "$smoke/b" examples/schemes/university.scm > /dev/null
mkfifo "$smoke/a.in" "$smoke/b.in"

./target/release/idr serve --data-dir "$smoke/a" --listen 127.0.0.1:0 \
  --origin 0 --origins 2 --sync-interval-ms 25 \
  < "$smoke/a.in" > "$smoke/a.out" 2>&1 &
pa=$!
exec 3> "$smoke/a.in"

wait_addr() {
  for _ in $(seq 1 200); do
    if [ -s "$1/listen.addr" ]; then tr -d '\n' < "$1/listen.addr"; return 0; fi
    sleep 0.05
  done
  echo "serve never published $1/listen.addr" >&2
  return 1
}
addr_a="$(wait_addr "$smoke/a")"

./target/release/idr serve --data-dir "$smoke/b" --listen 127.0.0.1:0 \
  --peer "$addr_a" --origin 1 --origins 2 --sync-interval-ms 25 \
  < "$smoke/b.in" > "$smoke/b.out" 2>&1 &
pb=$!
exec 4> "$smoke/b.in"
wait_addr "$smoke/b" > /dev/null

echo "insert R1: H=h1 R=r1 C=c1" >&3

# Partition: freeze B, journal an op at A it cannot see, then heal.
kill -STOP "$pb"
echo "insert R2: H=h1 T=t1 R=r1" >&3
sleep 0.3
kill -CONT "$pb"
echo "insert R4: C=c1 S=s1 G=g1" >&4

deadline=$((SECONDS + 30))
converged=0
while [ "$SECONDS" -lt "$deadline" ]; do
  printf '.digest\n' >&3
  printf '.digest\n' >&4
  sleep 0.2
  da="$(grep '^digest ' "$smoke/a.out" | tail -n 1 || true)"
  db="$(grep '^digest ' "$smoke/b.out" | tail -n 1 || true)"
  if [ -n "$da" ] && [ "$da" = "$db" ] && ! printf '%s' "$da" | grep -q '0/00000000'; then
    converged=1
    break
  fi
done
if [ "$converged" != 1 ]; then
  echo "wire smoke: no convergence within 30s" >&2
  echo "--- A ---" >&2; cat "$smoke/a.out" >&2
  echo "--- B ---" >&2; cat "$smoke/b.out" >&2
  exit 1
fi

echo quit >&3
echo quit >&4
exec 3>&- 4>&-
wait "$pa"
wait "$pb"
pa='' pb=''
echo "wire smoke: converged at $da"
