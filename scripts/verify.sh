#!/usr/bin/env bash
# Full offline verification: build, test, lint. The default workspace has
# zero registry dependencies, so this runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Bounded differential-fuzzing smoke run: 100 seed-deterministic cases
# replayed against four oracles in lockstep (parallel session, serial
# session, naive chase, Theorem 4.1 expressions). Exits 8 and writes
# repro fixtures to target/fuzz-failures on any divergence.
./target/release/idr fuzz --seed 42 --cases 100 --shrink
