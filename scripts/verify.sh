#!/usr/bin/env bash
# Full offline verification: build, test, lint. The default workspace has
# zero registry dependencies, so this runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc gate: every public item is documented (the crates opt into
# missing_docs) and no broken intra-doc links.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Bounded differential-fuzzing smoke run: 100 seed-deterministic cases
# replayed against four oracles in lockstep (parallel session, serial
# session, naive chase, Theorem 4.1 expressions). Exits 8 and writes
# repro fixtures to target/fuzz-failures on any divergence.
./target/release/idr fuzz --seed 42 --cases 100 --shrink

# Crash-point recovery fuzzing: 200 durable op streams, the WAL cut at
# every byte boundary, each cut recovered and diffed against a
# never-crashed oracle (tens of thousands of crash points). Exits 8 on
# any recovery divergence.
./target/release/idr fuzz --crash --seed 20260806 --cases 200

# Replication-convergence fuzzing: 200 random op streams partitioned
# across 2–4 simulated replicas under random fault plans (drop, delay,
# duplication, partition + heal, crash mid-sync). Every replica's
# converged state must match a never-partitioned baseline byte for byte;
# failures shrink to replayable scenario files. Exits 8 on any miss.
./target/release/idr fuzz --sync --seed 42 --cases 200

# Concurrent-serving fuzzing: 100 random op schedules run through the
# hub under racing client threads, the final state diffed against a
# serial replay of the committed WAL order (Thm 4.2: cross-block ops
# commute, so the two must agree byte for byte). Exits 8 on any miss.
./target/release/idr fuzz --concurrent --seed 42 --cases 100

# Mid-batch crash cuts on the group-commit WAL: concurrent durable
# streams, the log truncated inside coalesced batches, each cut
# recovered and checked against the committed-prefix oracle.
./target/release/idr fuzz --crash --concurrent --seed 20260806 --cases 100

# Batch-vs-serial equivalence fuzzing: framed op groups applied through
# apply_batch over a real durable store, diffed per-op against serial
# application (verdicts, state, consistency, probe answers), then the
# data dir recovered and diffed again. Exits 8 on any divergence.
./target/release/idr fuzz --batch --seed 42 --cases 50

# The checked-in demo scenario must converge (and exercises the CLI
# round-trace path end to end).
./target/release/idr sync examples/scenarios/partition-heal.txt > /dev/null
