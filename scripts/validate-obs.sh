#!/usr/bin/env bash
# Validates the CLI's observability artifacts against the checked-in
# contract (scripts/obs-schema.json): runs chase / query / maintain /
# explain on the university fixture with --trace=json and --metrics, then
# checks every emitted event line and the metrics document field by
# field. Dependency-free on purpose — python3 stdlib only.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q

SCM=examples/schemes/university.scm
STATE=examples/states/university.state
TRACE=$(mktemp)
METRICS=$(mktemp)
trap 'rm -f "$TRACE" "$METRICS"' EXIT

./target/release/idr chase "$SCM" "$STATE" --trace=json --metrics "$METRICS" 2>> "$TRACE" > /dev/null
./target/release/idr query "$SCM" "$STATE" H T C --trace=json 2>> "$TRACE" > /dev/null
./target/release/idr maintain "$SCM" "$STATE" "R4: C=c1 S=s2 G=g2" --trace=json 2>> "$TRACE" > /dev/null
# The rejected insert exits 1 by design; its trace must still validate.
./target/release/idr explain "$SCM" "$STATE" --insert "R1: H=h1 R=r1 C=c9" --trace=json \
  2>> "$TRACE" > /dev/null || true
# A replication scenario with a scripted crash: exercises the sync_*
# event family (ops shipped, round completions, the crash, convergence).
./target/release/idr sync examples/scenarios/partition-heal.txt --trace=json \
  2>> "$TRACE" > /dev/null
# A real multi-client serve session: two writer lanes with group commit,
# every op journaled (--slow-op-us 0) and a `.stats` probe in-band. Its
# stderr carries both the op_timeline trace events and the slow_op
# records; both shapes are validated below.
DATA=$(mktemp -d)
trap 'rm -f "$TRACE" "$METRICS"; rm -rf "$DATA"' EXIT
./target/release/idr init "$DATA" "$SCM" > /dev/null
printf '%s\n' \
  "insert R1: H=h9 R=r9 C=c9" \
  "insert R4: C=c9 S=s9 G=g9" \
  "insert R2: H=h9 T=t9 R=r9" \
  "delete R2: H=h9 T=t9 R=r9" \
  ".stats" \
  "quit" \
  | ./target/release/idr serve --data-dir "$DATA" --clients 2 --group-commit-window 200 \
      --stats-every 2 --slow-op-us 0 --trace=json 2>> "$TRACE" > /dev/null

TRACE="$TRACE" METRICS="$METRICS" python3 - <<'EOF'
import json, os

with open("scripts/obs-schema.json") as f:
    schema = json.load(f)

PY_TYPES = {"string": str, "integer": int, "boolean": bool, "array": list, "object": dict}

def check_fields(obj, fields, where):
    extra = set(obj) - set(fields)
    assert not extra, f"{where}: unexpected fields {sorted(extra)}"
    for name, ty in fields.items():
        assert name in obj, f"{where}: missing field {name!r}"
        # bool is an int subclass in python: keep integers strictly numeric.
        if ty == "integer":
            ok = isinstance(obj[name], int) and not isinstance(obj[name], bool)
        else:
            ok = isinstance(obj[name], PY_TYPES[ty])
        assert ok, f"{where}: field {name!r} should be {ty}, got {obj[name]!r}"

events, slow_ops, kinds = 0, 0, set()
with open(os.environ["TRACE"]) as f:
    for lineno, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        e = json.loads(line)
        kind = e.pop("type", None)
        # The serve session's stderr interleaves the slow-op journal
        # (--slow-op-us) with the trace stream; it has its own shape.
        if kind == "slow_op":
            check_fields(e, schema["slow_op"], f"trace line {lineno} (slow_op)")
            slow_ops += 1
            continue
        assert kind in schema["events"], f"trace line {lineno}: unknown event type {kind!r}"
        check_fields(e, schema["events"][kind], f"trace line {lineno} ({kind})")
        events += 1
        kinds.add(kind)

assert events > 0, "no trace events captured"
for expected in ["chase_started", "fd_rule_fired", "session_built", "query_answered",
                 "selection_performed", "insert_applied", "state_rejected",
                 "sync_ops_shipped", "sync_round_completed", "sync_replica_crashed",
                 "sync_converged",
                 # The serve session's pipeline family.
                 "op_timeline", "wal_appended", "group_committed", "epoch_published"]:
    assert expected in kinds, f"exercise did not produce a {expected!r} event"
# Each of the serve session's 4 mutations must land in the slow-op
# journal (threshold 0 journals everything).
assert slow_ops == 4, f"expected 4 slow_op records, saw {slow_ops}"

with open(os.environ["METRICS"]) as f:
    m = json.load(f)
check_fields(m, schema["metrics"], "metrics document")
for k, v in {**m["counters"], **m["gauges"]}.items():
    assert isinstance(v, int) and not isinstance(v, bool), f"metric {k!r} is not an integer"
for i, h in enumerate(m["histograms"]):
    check_fields(h, schema["histogram_entry"], f"histogram {i}")
    for bucket in h["buckets"]:
        assert isinstance(bucket, list) and len(bucket) == 2, f"histogram {i}: bad bucket {bucket!r}"

print(f"OK: {events} trace events ({len(kinds)} kinds), {slow_ops} slow-op records "
      "and the metrics document match the schema")
EOF
