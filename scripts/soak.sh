#!/usr/bin/env bash
# Long-running fuzz soak: every oracle arm at 1000 cases.
#
# verify.sh runs each arm bounded (50–200 cases) as a smoke gate; this
# script is the pre-release / overnight version. All eight arms ride six
# CLI invocations — the default run covers arms 1–4 (parallel session,
# serial session, naive chase, Theorem 4.1 expressions, diffed in
# lockstep), then one invocation per later arm: crash-point recovery,
# replication convergence, concurrent serving, group-commit crash cuts,
# and batch-vs-serial equivalence. Each arm is seed-deterministic, so a
# red run reproduces from the per-case seed it prints.
#
# Budget roughly tens of minutes; pass a case count to scale it
# (default 1000).
set -euo pipefail
cd "$(dirname "$0")/.."

CASES="${1:-1000}"
SEED="${SOAK_SEED:-20260808}"

cargo build --release
echo "soak: $CASES case(s) per arm from seed $SEED"

echo "--- arms 1-4: differential (parallel / serial / naive chase / Thm 4.1) ---"
./target/release/idr fuzz --seed "$SEED" --cases "$CASES" --shrink --out target/soak-failures

echo "--- arm 5: crash-point recovery ---"
./target/release/idr fuzz --crash --seed "$SEED" --cases "$CASES"

echo "--- arm 6: replication convergence ---"
./target/release/idr fuzz --sync --seed "$SEED" --cases "$CASES" --out target/soak-failures

echo "--- arm 7: concurrent serving ---"
./target/release/idr fuzz --concurrent --seed "$SEED" --cases "$CASES"

echo "--- arm 7b: group-commit crash cuts ---"
./target/release/idr fuzz --crash --concurrent --seed "$SEED" --cases "$CASES"

echo "--- arm 8: batch-vs-serial equivalence ---"
./target/release/idr fuzz --batch --seed "$SEED" --cases "$CASES"

echo "soak: all arms clean at $CASES case(s)"
